package server

import (
	"container/list"
	"fmt"
	"sync"

	"mhla/pkg/mhla"
)

// CacheStats is a point-in-time snapshot of the compiled-workspace
// cache counters.
type CacheStats struct {
	// Hits counts requests that found their program already present
	// (including entries still compiling — the finder waits on the
	// in-flight compile instead of starting its own).
	Hits int64 `json:"hits"`
	// Misses counts requests that inserted a new entry; every miss
	// triggers exactly one compile.
	Misses int64 `json:"misses"`
	// Evictions counts entries dropped by the LRU bound. In-flight
	// requests holding an evicted workspace finish unharmed — eviction
	// only removes the cache's reference.
	Evictions int64 `json:"evictions"`
	// Compiles counts workspace compilations actually run; with a
	// large enough capacity it equals Misses (each distinct program
	// compiles exactly once).
	Compiles int64 `json:"compiles"`
	// Entries is the current resident entry count (<= capacity).
	Entries int `json:"entries"`
}

// wsEntry is one cache slot. The once gates the singleflight compile:
// whoever created the entry runs it; concurrent requests for the same
// digest wait on it and share the outcome. The entry stays valid after
// eviction — holders keep their pointer, the cache just forgets its.
type wsEntry struct {
	digest string
	once   sync.Once
	ws     *mhla.Workspace
	err    error
	// settled (guarded by the cache mutex) is set once the compile has
	// completed; the eviction scan skips unsettled entries so an
	// in-flight compile is never evicted — which is what keeps the
	// compile-exactly-once guarantee true even under capacity
	// pressure.
	settled bool
}

// wsCache is a bounded LRU of compiled workspaces keyed by canonical
// program digest, with singleflight compilation. All bookkeeping —
// lookup, insertion, recency, eviction, the stats counters — happens
// under one mutex; compilation itself runs outside it, serialized per
// entry by the entry's once.
type wsCache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	entries   map[string]*list.Element
	hits      int64
	misses    int64
	evictions int64
	compiles  int64
	// onCompile, when non-nil, runs inside each compile (before the
	// work), under the entry's once — the per-program
	// compiled-exactly-once instrumentation point.
	onCompile func(digest string)
}

func newWSCache(capacity int, onCompile func(string)) *wsCache {
	if capacity < 1 {
		capacity = 1
	}
	return &wsCache{
		capacity:  capacity,
		ll:        list.New(),
		entries:   make(map[string]*list.Element, capacity),
		onCompile: onCompile,
	}
}

// get returns the workspace of the given digest, compiling it with
// compile on the first request. Exactly one goroutine compiles each
// resident digest, no matter how many arrive concurrently: the entry
// is created under the lock (one creator), and the creator and all
// finders funnel through the entry's once. Failed compiles are not
// negative-cached: the entry is dropped again — and capacity is
// enforced only after a compile succeeds — so cheap-to-create invalid
// programs can never flush compiled workspaces out of the LRU (the
// next request for the same digest recompiles and fails afresh —
// compile outcomes are deterministic per digest). Entries may
// transiently exceed capacity while compiles are in flight, bounded
// by the server's in-flight request semaphore.
func (c *wsCache) get(digest string, compile func() (*mhla.Workspace, error)) (*mhla.Workspace, error) {
	c.mu.Lock()
	if el, ok := c.entries[digest]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		e := el.Value.(*wsEntry)
		settled := e.settled
		c.mu.Unlock()
		if settled {
			// Warm hit: the compile finished long ago, nothing to
			// settle — skip the second lock on the hot path.
			return e.ws, e.err
		}
		e.once.Do(func() { c.runCompile(e, compile) })
		c.settle(e)
		return e.ws, e.err
	}
	e := &wsEntry{digest: digest}
	c.entries[digest] = c.ll.PushFront(e)
	c.misses++
	c.mu.Unlock()
	e.once.Do(func() { c.runCompile(e, compile) })
	c.settle(e)
	return e.ws, e.err
}

// settle finalizes an entry after its compile has completed: a failed
// entry is dropped (if it is still the resident one for its digest —
// idempotent across the waiters sharing the failure), a successful
// one triggers LRU eviction down to capacity.
func (c *wsCache) settle(e *wsEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.settled = true
	if e.err != nil {
		if el, ok := c.entries[e.digest]; ok && el.Value.(*wsEntry) == e {
			c.ll.Remove(el)
			delete(c.entries, e.digest)
		}
		return
	}
	// Evict least-recent settled entries until the settled population
	// fits capacity. Entries still compiling neither count toward the
	// bound nor qualify as victims: evicting one would allow a
	// duplicate compile, and counting them would let a burst of
	// in-flight (possibly invalid, soon self-removing) compiles flush
	// settled hot workspaces. The transient list overshoot is bounded
	// by the in-flight semaphore, and whichever settle runs last trims
	// the settled population back to capacity.
	settledCount := 0
	for el := c.ll.Front(); el != nil; el = el.Next() {
		if el.Value.(*wsEntry).settled {
			settledCount++
		}
	}
	for settledCount > c.capacity {
		var victim *list.Element
		for el := c.ll.Back(); el != nil; el = el.Prev() {
			if el.Value.(*wsEntry).settled {
				victim = el
				break
			}
		}
		c.ll.Remove(victim)
		delete(c.entries, victim.Value.(*wsEntry).digest)
		c.evictions++
		settledCount--
	}
}

func (c *wsCache) runCompile(e *wsEntry, compile func() (*mhla.Workspace, error)) {
	c.mu.Lock()
	c.compiles++
	c.mu.Unlock()
	// A panicking compile must still leave the entry with an outcome:
	// once.Do would otherwise mark it done with ws == err == nil, and
	// the unsettled entry would poison its digest (and a cache slot)
	// forever.
	defer func() {
		if r := recover(); r != nil {
			e.err = fmt.Errorf("server: workspace compile panicked: %v", r)
		}
	}()
	if c.onCompile != nil {
		c.onCompile(e.digest)
	}
	e.ws, e.err = compile()
}

// stats snapshots the counters.
func (c *wsCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Compiles:  c.compiles,
		Entries:   c.ll.Len(),
	}
}
