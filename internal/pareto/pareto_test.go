package pareto

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestFrontierSimple(t *testing.T) {
	pts := []Point{
		{Label: "a", Cycles: 100, Energy: 50},
		{Label: "b", Cycles: 80, Energy: 70},  // frontier
		{Label: "c", Cycles: 120, Energy: 40}, // frontier
		{Label: "d", Cycles: 110, Energy: 60}, // dominated by a
		{Label: "e", Cycles: 100, Energy: 50}, // duplicate of a
	}
	f := Frontier(pts)
	if len(f) != 3 {
		t.Fatalf("frontier = %v, want 3 points", f)
	}
	if f[0].Label != "b" || f[1].Label != "a" || f[2].Label != "c" {
		t.Errorf("frontier order = %v", f)
	}
}

func TestDominates(t *testing.T) {
	a := Point{Cycles: 10, Energy: 10}
	cases := []struct {
		b    Point
		want bool
	}{
		{Point{Cycles: 10, Energy: 10}, false}, // equal: no strict edge
		{Point{Cycles: 11, Energy: 10}, true},
		{Point{Cycles: 10, Energy: 11}, true},
		{Point{Cycles: 9, Energy: 11}, false},
		{Point{Cycles: 11, Energy: 9}, false},
		{Point{Cycles: 12, Energy: 12}, true},
	}
	for _, c := range cases {
		if got := a.Dominates(c.b); got != c.want {
			t.Errorf("Dominates(%v) = %v, want %v", c.b, got, c.want)
		}
	}
}

func TestFrontierEmptyAndSingle(t *testing.T) {
	if f := Frontier(nil); len(f) != 0 {
		t.Errorf("Frontier(nil) = %v", f)
	}
	one := []Point{{Label: "x", Cycles: 1, Energy: 1}}
	if f := Frontier(one); len(f) != 1 || f[0].Label != "x" {
		t.Errorf("Frontier(single) = %v", f)
	}
}

func randPoints(r *rand.Rand) []Point {
	n := r.Intn(20)
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{
			Label:  string(rune('a' + i)),
			Size:   int64(r.Intn(4096)),
			Cycles: int64(r.Intn(100)),
			Energy: float64(r.Intn(100)),
		}
	}
	return pts
}

func TestQuickFrontierLaws(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pts := randPoints(r)
		front := Frontier(pts)
		// 1. No point of the frontier dominates another.
		for i := range front {
			for j := range front {
				if i != j && front[i].Dominates(front[j]) {
					return false
				}
			}
		}
		// 2. Every input point is dominated by or equal to some
		// frontier point.
		for _, p := range pts {
			ok := false
			for _, q := range front {
				if q.Dominates(p) || (q.Cycles == p.Cycles && q.Energy == p.Energy) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		// 3. Idempotence.
		again := Frontier(front)
		if len(again) != len(front) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRender(t *testing.T) {
	s := Render([]Point{{Label: "l1-1024", Size: 1024, Cycles: 42, Energy: 7}})
	if !strings.Contains(s, "l1-1024") || !strings.Contains(s, "42") {
		t.Errorf("Render = %q", s)
	}
	if Render(nil) != "(empty frontier)\n" {
		t.Error("empty render broken")
	}
}
