// Package pareto provides the trade-off utilities of the MHLA
// exploration: given evaluated (size, energy, cycles) points, it
// extracts the non-dominated frontier the paper's "thorough trade-off
// exploration for different memory layer sizes" produces.
package pareto

import (
	"fmt"
	"sort"
	"strings"
)

// Point is one evaluated design point.
type Point struct {
	// Label identifies the point (e.g. the platform name).
	Label string
	// Size is the on-chip capacity in bytes (a design knob, reported
	// but not part of the dominance test).
	Size int64
	// Cycles and Energy are the minimized quantities.
	Cycles int64
	// Energy is in pJ.
	Energy float64
}

// Dominates reports whether p is at least as good as q in both
// minimized dimensions and strictly better in one.
func (p Point) Dominates(q Point) bool {
	if p.Cycles > q.Cycles || p.Energy > q.Energy {
		return false
	}
	return p.Cycles < q.Cycles || p.Energy < q.Energy
}

// Frontier returns the non-dominated subset of the points, sorted by
// ascending cycles (and descending energy along the frontier).
// Duplicate-cost points are kept once (the first by label order).
func Frontier(points []Point) []Point {
	sorted := append([]Point(nil), points...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Cycles != b.Cycles {
			return a.Cycles < b.Cycles
		}
		if a.Energy != b.Energy {
			return a.Energy < b.Energy
		}
		return a.Label < b.Label
	})
	var out []Point
	bestEnergy := 0.0
	for i, p := range sorted {
		if i > 0 && p.Cycles == sorted[i-1].Cycles && p.Energy == sorted[i-1].Energy {
			continue // exact duplicate cost
		}
		if len(out) > 0 && p.Energy >= bestEnergy {
			continue // dominated by an earlier (faster) point
		}
		out = append(out, p)
		bestEnergy = p.Energy
	}
	return out
}

// Render draws the frontier as a small ASCII table.
func Render(points []Point) string {
	if len(points) == 0 {
		return "(empty frontier)\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %10s %14s %14s\n", "point", "size", "cycles", "energy(pJ)")
	for _, p := range points {
		fmt.Fprintf(&sb, "%-16s %10d %14d %14.0f\n", p.Label, p.Size, p.Cycles, p.Energy)
	}
	return sb.String()
}
