// Package mhla is a from-scratch Go reproduction of
//
//	M. Dasygenis, E. Brockmeyer, B. Durinck, F. Catthoor, D. Soudris,
//	A. Thanailakis. "A Memory Hierarchical Layer Assigning and
//	Prefetching Technique to Overcome the Memory Performance/Energy
//	Bottleneck." DATE 2005.
//
// The library implements the complete tool flow: the application
// model (internal/model), data-reuse analysis deriving copy-candidate
// chains (internal/reuse), the platform and memory energy models
// (internal/platform, internal/energy), lifetime-aware layer
// assignment (internal/lifetime, internal/assign), the time-extension
// prefetch scheduler of the paper's Figure 1 (internal/te), an
// element-level validation simulator (internal/sim), the nine
// benchmark applications of the evaluation (internal/apps), and the
// exploration/reporting layers that regenerate the paper's figures
// (internal/explore, internal/pareto, internal/report, internal/core).
//
// The root-level benchmarks in bench_test.go regenerate every figure
// of the paper; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results.
package mhla
