// Package mhla is a from-scratch Go reproduction of
//
//	M. Dasygenis, E. Brockmeyer, B. Durinck, F. Catthoor, D. Soudris,
//	A. Thanailakis. "A Memory Hierarchical Layer Assigning and
//	Prefetching Technique to Overcome the Memory Performance/Energy
//	Bottleneck." DATE 2005.
//
// The public entry point is the pkg/mhla facade: a functional-options
// API over the complete tool flow, with context-aware cancellation,
// progress callbacks and a concurrent batch Explorer:
//
//	import "mhla/pkg/mhla"
//
//	res, err := mhla.Run(ctx, prog,
//		mhla.WithPlatform(mhla.TwoLevel(4096)),
//		mhla.WithObjective(mhla.Energy),
//	)
//
// Under the facade, the library implements the application model
// (internal/model), data-reuse analysis deriving copy-candidate
// chains (internal/reuse), the platform and memory energy models
// (internal/platform, internal/energy), lifetime-aware layer
// assignment (internal/lifetime, internal/assign), the time-extension
// prefetch scheduler of the paper's Figure 1 (internal/te), an
// element-level validation simulator (internal/sim), the nine
// benchmark applications of the evaluation (internal/apps), and the
// exploration/reporting layers that regenerate the paper's figures
// (internal/explore, internal/pareto, internal/report, internal/core).
//
// The root-level benchmarks in bench_test.go regenerate every figure
// of the paper through the facade; DESIGN.md holds the package map
// and the experiment index.
package mhla
