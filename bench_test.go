package mhla_test

// The benchmark harness regenerates every figure and headline claim
// of the paper's evaluation (see the experiment index in DESIGN.md):
//
//	BenchmarkFigure2/<app>     — normalized execution time of the four
//	                             operating points (original, MHLA,
//	                             MHLA+TE, ideal) per application
//	BenchmarkFigure3/<app>     — normalized memory energy per app
//	BenchmarkExploration/<app> — trade-off sweep over L1 sizes (E1)
//	BenchmarkAblation*         — design-choice ablations (A1..A6)
//	Benchmark<component>       — tool-performance microbenchmarks
//
// Everything drives the public pkg/mhla facade (plus internal/apps
// for the benchmark catalog). The reported custom metrics carry the
// figure data: e.g. "mhla_pct" is the MHLA execution time as a
// percentage of the original code (Figure 2's bar height). Run with:
//
//	go test -bench=. -benchmem
import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"mhla/internal/apps"
	"mhla/internal/progen"
	"mhla/internal/server"
	"mhla/pkg/mhla"
)

// runApp executes the full flow at paper scale on the app's figure
// configuration.
func runApp(b *testing.B, app apps.App, opts ...mhla.Option) *mhla.Result {
	b.Helper()
	opts = append([]mhla.Option{mhla.WithL1(app.L1)}, opts...)
	res, err := mhla.Run(context.Background(), app.Build(apps.Paper), opts...)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFigure2 regenerates the performance figure: for every
// application it reports the MHLA, MHLA+TE and ideal execution times
// as percentages of the original code, plus the TE boost over MHLA.
func BenchmarkFigure2(b *testing.B) {
	for _, app := range apps.All() {
		app := app
		b.Run(app.Name, func(b *testing.B) {
			var res *mhla.Result
			for i := 0; i < b.N; i++ {
				res = runApp(b, app)
			}
			g := res.Gains()
			b.ReportMetric(100*g.MHLACycles, "mhla_pct")
			b.ReportMetric(100*g.TECycles, "te_pct")
			b.ReportMetric(100*g.IdealCycles, "ideal_pct")
			b.ReportMetric(100*res.TEBoost(), "te_boost_pct")
		})
	}
}

// BenchmarkFigure3 regenerates the energy figure: the MHLA energy as
// a percentage of the original code (TE leaves energy unchanged, as
// in the paper).
func BenchmarkFigure3(b *testing.B) {
	for _, app := range apps.All() {
		app := app
		b.Run(app.Name, func(b *testing.B) {
			var res *mhla.Result
			for i := 0; i < b.N; i++ {
				res = runApp(b, app)
			}
			g := res.Gains()
			b.ReportMetric(100*g.MHLAEnergy, "energy_pct")
			if res.TE.Energy != res.MHLA.Energy {
				b.Fatalf("TE changed energy: %v -> %v", res.MHLA.Energy, res.TE.Energy)
			}
		})
	}
}

// BenchmarkExploration regenerates the trade-off exploration (E1):
// a sweep of the on-chip size, reporting the Pareto frontier size and
// the energy span across the sweep.
func BenchmarkExploration(b *testing.B) {
	for _, name := range []string{"me", "qsdpcm", "durbin"} {
		app, err := apps.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			var sw *mhla.Sweep
			for i := 0; i < b.N; i++ {
				var err error
				sw, err = mhla.SweepL1(context.Background(), app.Build(apps.Paper), mhla.DefaultSweepSizes())
				if err != nil {
					b.Fatal(err)
				}
			}
			front := sw.Frontier()
			b.ReportMetric(float64(len(sw.Points)), "sweep_points")
			b.ReportMetric(float64(len(front)), "frontier_points")
			minE, maxE := sw.Points[0].Result.TE.Energy, sw.Points[0].Result.TE.Energy
			for _, p := range sw.Points {
				if e := p.Result.TE.Energy; e < minE {
					minE = e
				} else if e > maxE {
					maxE = e
				}
			}
			b.ReportMetric(maxE/minE, "energy_spread_x")
		})
	}
}

// BenchmarkBatchExplorer measures the concurrent batch Explorer on an
// app x size x objective grid, reporting jobs and worker throughput.
func BenchmarkBatchExplorer(b *testing.B) {
	grid := mhla.Grid{
		L1Sizes:    []int64{512, 1024, 2048, 4096},
		Objectives: []mhla.Objective{mhla.Energy, mhla.Time},
	}
	for _, name := range []string{"me", "durbin", "sobel"} {
		app, err := apps.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		grid.Apps = append(grid.Apps, mhla.GridApp{Name: app.Name, Program: app.Build(apps.Paper)})
	}
	jobs := grid.Jobs()
	var ex mhla.Explorer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := ex.Explore(context.Background(), jobs)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
	b.ReportMetric(float64(len(jobs)), "jobs")
}

// BenchmarkAblationInplace quantifies the in-place (lifetime-aware)
// size estimation (A1). The effect binds where the per-phase buffers
// fit a layer only through lifetime sharing — for the multi-phase
// wavelet that window is around 6 KiB (at the figure sizes the
// buffers of these apps happen to fit even statically, so the
// comparison runs at the binding sizes).
func BenchmarkAblationInplace(b *testing.B) {
	cases := []struct {
		name string
		l1   int64
	}{
		{"wavelet", 6144},
		{"cavity", 7168},
		{"qsdpcm", 1024},
	}
	for _, c := range cases {
		app, err := apps.ByName(c.name)
		if err != nil {
			b.Fatal(err)
		}
		prog := app.Build(apps.Paper)
		b.Run(c.name, func(b *testing.B) {
			var with, without *mhla.Result
			for i := 0; i < b.N; i++ {
				var err error
				with, err = mhla.Run(context.Background(), prog, mhla.WithL1(c.l1))
				if err != nil {
					b.Fatal(err)
				}
				without, err = mhla.Run(context.Background(), prog, mhla.WithL1(c.l1), mhla.WithoutInPlace())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*with.Gains().MHLAEnergy, "inplace_energy_pct")
			b.ReportMetric(100*without.Gains().MHLAEnergy, "static_energy_pct")
		})
	}
}

// BenchmarkAblationPolicy quantifies inter-iteration reuse (A2):
// the slide transfer policy against full refetching.
func BenchmarkAblationPolicy(b *testing.B) {
	for _, name := range []string{"me", "sobel", "voice"} {
		app, err := apps.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			var slide, refetch *mhla.Result
			for i := 0; i < b.N; i++ {
				slide = runApp(b, app, mhla.WithPolicy(mhla.Slide))
				refetch = runApp(b, app, mhla.WithPolicy(mhla.Refetch))
			}
			b.ReportMetric(100*slide.Gains().MHLAEnergy, "slide_energy_pct")
			b.ReportMetric(100*refetch.Gains().MHLAEnergy, "refetch_energy_pct")
		})
	}
}

// BenchmarkAblationSearch compares the greedy engine of the MHLA tool
// against the branch-and-bound optimum (A3) on down-scaled workloads
// where the exact engine is tractable.
func BenchmarkAblationSearch(b *testing.B) {
	for _, name := range []string{"durbin", "sobel", "voice"} {
		app, err := apps.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			prog := app.Build(apps.Test)
			plat := mhla.TwoLevel(app.L1)
			an, err := mhla.Analyze(prog)
			if err != nil {
				b.Fatal(err)
			}
			var greedy, optimal *mhla.SearchResult
			for i := 0; i < b.N; i++ {
				greedy, err = mhla.Search(context.Background(), an, plat)
				if err != nil {
					b.Fatal(err)
				}
				optimal, err = mhla.Search(context.Background(), an, plat, mhla.WithEngine(mhla.BnB))
				if err != nil {
					b.Fatal(err)
				}
			}
			if !optimal.Complete {
				b.Fatal("branch-and-bound incomplete")
			}
			b.ReportMetric(greedy.Cost.Energy/optimal.Cost.Energy, "greedy_vs_opt_x")
			b.ReportMetric(float64(greedy.States), "greedy_states")
			b.ReportMetric(float64(optimal.States), "bnb_states")
		})
	}
}

// BenchmarkParallelBnB measures the parallel branch-and-bound engine
// at 1, 2, 4 and 8 workers on the heaviest scenario of the scaled-up
// progen family (seed 7: a ~7M-leaf decision space). Results are
// byte-identical across worker counts by construction; the benchmark
// verifies that on every iteration and reports the states explored.
// Wall-clock speedup over workers=1 requires actual cores — on a
// single-CPU host the worker counts time-slice and tie. Allocations
// are reported because the incremental apply/undo engine's headline
// property is a steady-state DFS that allocates nothing (all per-op
// allocations are one-time setup: decision tables, the greedy seed
// and one searchState per subtree task). Measured numbers are
// recorded in BENCH_PARALLEL_BNB.json (clone-per-node engine) and
// BENCH_INCREMENTAL_BNB.json (incremental engine, before/after).
func BenchmarkParallelBnB(b *testing.B) {
	cfg := progen.Config{MaxArrays: 4, MaxBlocks: 3, MaxNests: 3, MaxAccesses: 4, MaxSpace: 40_000_000}
	sc := cfg.Generate(7)
	an, err := mhla.Analyze(sc.Program)
	if err != nil {
		b.Fatal(err)
	}
	var ref *mhla.SearchResult
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			var res *mhla.SearchResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = mhla.Search(context.Background(), an, sc.Platform,
					mhla.WithEngine(mhla.BnB), mhla.WithWorkers(w),
					mhla.WithObjective(sc.Options.Objective),
					mhla.WithPolicy(sc.Options.Policy),
					mhla.WithMaxStates(40_000_000))
				if err != nil {
					b.Fatal(err)
				}
			}
			if w == 1 {
				ref = res
			} else if ref != nil && (res.States != ref.States ||
				res.Cost.Cycles != ref.Cost.Cycles || res.Cost.Energy != ref.Cost.Energy) {
				b.Fatalf("workers=%d result diverged from workers=1", w)
			}
			b.ReportMetric(float64(res.States), "bnb_states")
			b.ReportMetric(float64(sc.Space), "space_leaves")
		})
	}
}

// freshSweep evaluates every size with its own full flow run —
// validate + analyze + tables per point, the pre-workspace behavior —
// over w concurrent workers. It returns the summed MHLA+TE cycles as
// a cross-check value.
func freshSweep(b *testing.B, prog *mhla.Program, sizes []int64, w int) int64 {
	b.Helper()
	results := make([]*mhla.Result, len(sizes))
	if w <= 1 {
		for i, l1 := range sizes {
			results[i] = runSweepPoint(b, prog, l1, nil)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		errs := make([]error, len(sizes))
		for g := 0; g < w; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(sizes) {
						return
					}
					results[i], errs[i] = mhla.Run(context.Background(), prog, mhla.WithL1(sizes[i]))
				}
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	var total int64
	for _, r := range results {
		total += r.TE.Cycles
	}
	return total
}

func runSweepPoint(b *testing.B, prog *mhla.Program, l1 int64, opts []mhla.Option) *mhla.Result {
	b.Helper()
	res, err := mhla.Run(context.Background(), prog, append([]mhla.Option{mhla.WithL1(l1)}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// sweepBenchCase is one named sub-benchmark of the workspace sweep
// suite — shared between BenchmarkWorkspaceSweep (which b.Runs each)
// and the BENCH_WORKSPACE_SWEEP.json writer test, so the recorded
// numbers come from exactly the benchmarked code.
type sweepBenchCase struct {
	name string
	fn   func(b *testing.B)
}

// workspaceSweepBenches builds the workspace sweep suite over the
// standard L1 sweep (17 half-power sizes, 256 B .. 64 KiB):
//
//	fresh/workers=N    — every sweep point validates, analyzes and
//	                     rebuilds the program-side tables itself (the
//	                     pre-workspace behavior), N points in flight;
//	                     greedy engine on the flagship app (qsdpcm)
//	shared/workers=N   — one workspace.Compile per sweep, the points
//	                     fan out over the concurrent sweep pool and
//	                     share it read-only
//	bnb-fresh/workers=1 — exact branch-and-bound at every point,
//	                     each search independent (cold greedy seed);
//	                     the workspace and its option catalogs are
//	                     already shared, so the remaining cost is
//	                     pure search
//	bnb-warm/workers=1 — the incremental chained sweep: ascending
//	                     sizes, each point's search warm-started from
//	                     its predecessor's optimum, pruning partials
//	                     that cannot beat the re-scored neighbor
//
// The exact-engine pair runs on the heaviest tractable scenario of
// the scaled-up progen family (the paper apps are intractable for
// exhaustive-quality search): the ratio of the pair is the headline
// cross-sweep incremental-search claim. Results are verified
// identical within each family on every iteration (summed MHLA+TE
// cycles) — the warm chain is byte-identical to cold per-point
// searches, it only explores fewer states. Wall-clock speedup of
// workers=4 over workers=1 requires actual cores — on a single-CPU
// host the points time-slice and tie. Measured numbers are recorded
// in BENCH_WORKSPACE_SWEEP.json (regenerate with the env-gated
// TestWriteWorkspaceSweepBench).
func workspaceSweepBenches(fatal func(...any)) []sweepBenchCase {
	app, err := apps.ByName("qsdpcm")
	if err != nil {
		fatal(err)
	}
	prog := app.Build(apps.Paper)
	sizes := mhla.DefaultSweepSizes()

	bnbCfg := progen.Config{MaxArrays: 6, MaxBlocks: 4, MaxNests: 3, MaxDepth: 5, MaxAccesses: 4, MaxSpace: 2_000_000_000}
	bnbSC := bnbCfg.Generate(6)
	bnbWS, err := mhla.Compile(bnbSC.Program)
	if err != nil {
		fatal(err)
	}
	bnbOpts := []mhla.Option{
		mhla.WithEngine(mhla.BnB), mhla.WithMaxStates(400_000_000),
		mhla.WithObjective(bnbSC.Options.Objective), mhla.WithPolicy(bnbSC.Options.Policy),
	}

	var cases []sweepBenchCase
	var ref int64
	for _, w := range []int{1, 4} {
		w := w
		cases = append(cases,
			sweepBenchCase{fmt.Sprintf("fresh/workers=%d", w), func(b *testing.B) {
				b.ReportAllocs()
				var total int64
				for i := 0; i < b.N; i++ {
					total = freshSweep(b, prog, sizes, w)
				}
				if ref == 0 {
					ref = total
				} else if total != ref {
					b.Fatalf("fresh sweep (workers=%d) diverged: %d != %d", w, total, ref)
				}
				b.ReportMetric(float64(len(sizes)), "sweep_points")
			}},
			sweepBenchCase{fmt.Sprintf("shared/workers=%d", w), func(b *testing.B) {
				b.ReportAllocs()
				var total int64
				for i := 0; i < b.N; i++ {
					ws, err := mhla.Compile(prog)
					if err != nil {
						b.Fatal(err)
					}
					sw, err := mhla.SweepL1(context.Background(), prog, sizes,
						mhla.WithWorkspace(ws), mhla.WithSweepWorkers(w))
					if err != nil {
						b.Fatal(err)
					}
					total = 0
					for _, pt := range sw.Points {
						total += pt.Result.TE.Cycles
					}
				}
				if ref != 0 && total != ref {
					b.Fatalf("shared sweep (workers=%d) diverged from fresh: %d != %d", w, total, ref)
				}
				b.ReportMetric(float64(len(sizes)), "sweep_points")
			}},
		)
	}

	var bnbRef int64
	cases = append(cases,
		sweepBenchCase{"bnb-fresh/workers=1", func(b *testing.B) {
			b.ReportAllocs()
			var total int64
			var states int
			for i := 0; i < b.N; i++ {
				total, states = 0, 0
				for _, l1 := range sizes {
					res, err := mhla.Run(context.Background(), bnbSC.Program,
						append([]mhla.Option{mhla.WithL1(l1), mhla.WithWorkspace(bnbWS)}, bnbOpts...)...)
					if err != nil {
						b.Fatal(err)
					}
					total += res.TE.Cycles
					states += res.SearchStates
				}
			}
			if bnbRef == 0 {
				bnbRef = total
			} else if total != bnbRef {
				b.Fatalf("cold bnb sweep diverged: %d != %d", total, bnbRef)
			}
			b.ReportMetric(float64(states), "bnb_states")
			b.ReportMetric(float64(len(sizes)), "sweep_points")
		}},
		sweepBenchCase{"bnb-warm/workers=1", func(b *testing.B) {
			b.ReportAllocs()
			var total int64
			var states int
			for i := 0; i < b.N; i++ {
				sw, err := mhla.SweepL1(context.Background(), bnbSC.Program, sizes,
					append([]mhla.Option{mhla.WithWorkspace(bnbWS), mhla.WithSweepWorkers(1)}, bnbOpts...)...)
				if err != nil {
					b.Fatal(err)
				}
				total, states = 0, 0
				for _, pt := range sw.Points {
					total += pt.Result.TE.Cycles
					states += pt.Result.SearchStates
				}
			}
			if bnbRef != 0 && total != bnbRef {
				b.Fatalf("warm bnb sweep diverged from cold per-point searches: %d != %d", total, bnbRef)
			}
			b.ReportMetric(float64(states), "bnb_states")
			b.ReportMetric(float64(len(sizes)), "sweep_points")
		}},
	)
	return cases
}

// BenchmarkWorkspaceSweep runs the workspace sweep suite; see
// workspaceSweepBenches for the sub-benchmarks and the verification
// each carries.
func BenchmarkWorkspaceSweep(b *testing.B) {
	for _, c := range workspaceSweepBenches(b.Fatal) {
		b.Run(c.name, c.fn)
	}
}

// benchPost posts a JSON body and returns status and response bytes.
// Transport failures report with Errorf (safe off the benchmark
// goroutine, where FailNow is not) and surface as status 0.
func benchPost(b *testing.B, client *http.Client, url, body string) (int, []byte) {
	b.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		b.Errorf("POST %s: %v", url, err)
		return 0, nil
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		b.Errorf("POST %s: read body: %v", url, err)
		return 0, nil
	}
	return resp.StatusCode, data
}

// BenchmarkServerThroughput measures the HTTP serving layer end to end
// on the flagship application:
//
//	run/cold          — every request is a distinct program: full
//	                    decode + workspace compile + flow per request
//	run/warm          — every request hits the compiled-workspace
//	                    cache: the program-side analysis is paid once
//	run/warm/parallel — warm requests from concurrent clients through
//	                    the in-flight semaphore
//	sweep/warm        — the 9-point concurrent L1 sweep per request
//
// Warm responses are verified byte-identical to the direct facade
// call on every iteration — the serving layer's differential
// guarantee, measured rather than assumed. Measured numbers are
// recorded in BENCH_SERVER.json; the cold/warm gap is the cache win.
// On a single-CPU host the parallel variant cannot beat sequential
// warm requests (the flow is compute-bound); re-measure on cores for
// the concurrency win.
func BenchmarkServerThroughput(b *testing.B) {
	app, err := apps.ByName("me")
	if err != nil {
		b.Fatal(err)
	}
	prog := app.Build(apps.Paper)
	progJSON, err := mhla.EncodeProgram(prog)
	if err != nil {
		b.Fatal(err)
	}
	res, err := mhla.Run(context.Background(), prog, mhla.WithL1(app.L1))
	if err != nil {
		b.Fatal(err)
	}
	want, err := mhla.ResultJSON(res)
	if err != nil {
		b.Fatal(err)
	}
	warmBody := fmt.Sprintf(`{"app":"me","l1_bytes":%d}`, app.L1)

	newServer := func() (*server.Server, *httptest.Server) {
		srv := server.New(server.Config{CacheEntries: 64})
		return srv, httptest.NewServer(srv.Handler())
	}

	b.Run("run/cold", func(b *testing.B) {
		srv, ts := newServer()
		defer ts.Close()
		for i := 0; i < b.N; i++ {
			// A unique program name per request: a distinct digest, so
			// every request compiles its workspace from scratch.
			body := fmt.Sprintf(`{"program":%s,"l1_bytes":%d}`,
				strings.Replace(string(progJSON), `"name": "me"`, fmt.Sprintf(`"name": "me-%d"`, i), 1),
				app.L1)
			code, data := benchPost(b, http.DefaultClient, ts.URL+"/v1/run", body)
			if code != http.StatusOK {
				b.Fatalf("status %d: %s", code, data)
			}
		}
		b.StopTimer()
		if got := srv.Stats().Cache.Compiles; got != int64(b.N) {
			b.Fatalf("cold run compiled %d workspaces, want %d", got, b.N)
		}
	})

	b.Run("run/warm", func(b *testing.B) {
		srv, ts := newServer()
		defer ts.Close()
		// Prime the cache outside the timer.
		if code, data := benchPost(b, http.DefaultClient, ts.URL+"/v1/run", warmBody); code != http.StatusOK {
			b.Fatalf("prime status %d: %s", code, data)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			code, data := benchPost(b, http.DefaultClient, ts.URL+"/v1/run", warmBody)
			if code != http.StatusOK {
				b.Fatalf("status %d: %s", code, data)
			}
			if !bytes.Equal(data, want) {
				b.Fatalf("warm response diverged from direct facade call")
			}
		}
		b.StopTimer()
		if got := srv.Stats().Cache.Compiles; got != 1 {
			b.Fatalf("warm run compiled %d workspaces, want 1", got)
		}
	})

	b.Run("run/warm/parallel", func(b *testing.B) {
		_, ts := newServer()
		defer ts.Close()
		// A dedicated pooled client: the default transport keeps only 2
		// idle connections per host, so 8-way parallelism through it
		// would measure TCP dial/teardown churn instead of the server.
		client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
		defer client.CloseIdleConnections()
		if code, data := benchPost(b, client, ts.URL+"/v1/run", warmBody); code != http.StatusOK {
			b.Fatalf("prime status %d: %s", code, data)
		}
		b.SetParallelism(8)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				code, data := benchPost(b, client, ts.URL+"/v1/run", warmBody)
				if code != http.StatusOK {
					b.Errorf("status %d: %s", code, data)
					return
				}
				if !bytes.Equal(data, want) {
					b.Errorf("warm response diverged from direct facade call")
					return
				}
			}
		})
	})

	b.Run("sweep/warm", func(b *testing.B) {
		sw, err := mhla.SweepL1(context.Background(), prog, nil)
		if err != nil {
			b.Fatal(err)
		}
		wantSweep, err := sw.JSON()
		if err != nil {
			b.Fatal(err)
		}
		_, ts := newServer()
		defer ts.Close()
		sweepBody := `{"app":"me"}`
		if code, data := benchPost(b, http.DefaultClient, ts.URL+"/v1/sweep", sweepBody); code != http.StatusOK {
			b.Fatalf("prime status %d: %s", code, data)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			code, data := benchPost(b, http.DefaultClient, ts.URL+"/v1/sweep", sweepBody)
			if code != http.StatusOK {
				b.Fatalf("status %d: %s", code, data)
			}
			if !bytes.Equal(data, wantSweep) {
				b.Fatalf("sweep response diverged from direct facade call")
			}
		}
	})
}

// BenchmarkJobsThroughput measures the async job pipeline end to end:
// submit POST /v1/jobs requests with a bounded outstanding window,
// poll each to completion and fetch its stored result, verified
// byte-identical to the synchronous /v1/run response on every job. The
// measured quantity is pipeline throughput (submit + queue + execute +
// fetch), not single-job latency. Recorded in BENCH_JOBS.json by
// cmd/mhla-loadgen; on a single-CPU host extra job workers cannot
// raise throughput (the flow is compute-bound) — re-measure on cores.
func BenchmarkJobsThroughput(b *testing.B) {
	app, err := apps.ByName("me")
	if err != nil {
		b.Fatal(err)
	}
	prog := app.Build(apps.Paper)
	res, err := mhla.Run(context.Background(), prog, mhla.WithL1(app.L1))
	if err != nil {
		b.Fatal(err)
	}
	want, err := mhla.ResultJSON(res)
	if err != nil {
		b.Fatal(err)
	}
	srv := server.New(server.Config{CacheEntries: 64, JobWorkers: 2, JobBacklog: 1024})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	submitBody := fmt.Sprintf(`{"kind":"run","request":{"app":"me","l1_bytes":%d}}`, app.L1)

	// Prime the workspace cache outside the timer.
	if code, data := benchPost(b, http.DefaultClient, ts.URL+"/v1/run",
		fmt.Sprintf(`{"app":"me","l1_bytes":%d}`, app.L1)); code != http.StatusOK {
		b.Fatalf("prime status %d: %s", code, data)
	}

	var envelope struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	waitDone := func(id string) {
		b.Helper()
		for {
			resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
			if err != nil {
				b.Fatal(err)
			}
			err = json.NewDecoder(resp.Body).Decode(&envelope)
			resp.Body.Close()
			if err != nil {
				b.Fatal(err)
			}
			switch envelope.State {
			case "done":
				return
			case "failed", "canceled":
				b.Fatalf("job %s ended %s", id, envelope.State)
			}
		}
	}

	const window = 64 // outstanding jobs, well under the backlog
	pending := make([]string, 0, window)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		code, data := benchPost(b, http.DefaultClient, ts.URL+"/v1/jobs", submitBody)
		if code != http.StatusAccepted {
			b.Fatalf("submit status %d: %s", code, data)
		}
		if err := json.Unmarshal(data, &envelope); err != nil {
			b.Fatal(err)
		}
		pending = append(pending, envelope.ID)
		if len(pending) == window {
			waitDone(pending[0])
			pending = pending[1:]
		}
	}
	for _, id := range pending {
		waitDone(id)
	}
	b.StopTimer()

	// Spot-check byte identity on the last completed job.
	if envelope.ID != "" {
		code, data := benchGet(b, ts.URL+"/v1/jobs/"+envelope.ID+"/result")
		if code != http.StatusOK {
			b.Fatalf("result status %d: %s", code, data)
		}
		if !bytes.Equal(data, want) {
			b.Fatal("async result diverged from the synchronous response")
		}
	}
	if st := srv.Stats().Jobs; st.Failed != 0 || st.Shed != 0 {
		b.Fatalf("job outcomes: %+v", st)
	}
}

// benchGet fetches a URL and returns status and body bytes.
func benchGet(b *testing.B, url string) (int, []byte) {
	b.Helper()
	resp, err := http.Get(url)
	if err != nil {
		b.Errorf("GET %s: %v", url, err)
		return 0, nil
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		b.Errorf("GET %s: read body: %v", url, err)
		return 0, nil
	}
	return resp.StatusCode, data
}

// BenchmarkReuseAnalysis measures the copy-candidate derivation on
// the paper-scale applications (tool performance).
func BenchmarkReuseAnalysis(b *testing.B) {
	for _, name := range []string{"me", "qsdpcm", "jpeg"} {
		app, err := apps.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		prog := app.Build(apps.Paper)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mhla.Analyze(prog); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAssignmentSearch measures the greedy assignment step alone.
func BenchmarkAssignmentSearch(b *testing.B) {
	for _, name := range []string{"me", "qsdpcm", "cavity"} {
		app, err := apps.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		prog := app.Build(apps.Paper)
		an, err := mhla.Analyze(prog)
		if err != nil {
			b.Fatal(err)
		}
		plat := mhla.TwoLevel(app.L1)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mhla.Search(context.Background(), an, plat); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTimeExtension measures the Figure-1 TE step alone.
func BenchmarkTimeExtension(b *testing.B) {
	for _, name := range []string{"me", "qsdpcm"} {
		app, err := apps.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		prog := app.Build(apps.Paper)
		an, err := mhla.Analyze(prog)
		if err != nil {
			b.Fatal(err)
		}
		sr, err := mhla.Search(context.Background(), an, mhla.TwoLevel(app.L1))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mhla.Extend(sr.Assignment); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTraceSimulator measures the element-level validation
// simulator on the down-scaled workloads it is meant for.
func BenchmarkTraceSimulator(b *testing.B) {
	for _, name := range []string{"me", "cavity"} {
		app, err := apps.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		prog := app.Build(apps.Test)
		an, err := mhla.Analyze(prog)
		if err != nil {
			b.Fatal(err)
		}
		sr, err := mhla.Search(context.Background(), an, mhla.TwoLevel(app.L1))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mhla.SimulateTrace(sr.Assignment, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCacheSim measures the trace-driven hardware cache +
// prefetch simulator (the second backend) replaying paper-scale motion
// estimation (~14.6M accesses) through the default hierarchy, one
// sub-benchmark per prefetcher variant. The headline metric is
// accesses/s — the replay rate of the demand stream, reported as
// macc_per_s (millions of accesses per second). hit_pct and pf_pct
// record the model outputs so regressions in the simulation itself
// (not just its speed) show up in the numbers. Measured numbers are
// recorded in BENCH_CACHESIM.json.
func BenchmarkCacheSim(b *testing.B) {
	app, err := apps.ByName("me")
	if err != nil {
		b.Fatal(err)
	}
	prog := app.Build(apps.Paper)
	ws, err := mhla.Compile(prog)
	if err != nil {
		b.Fatal(err)
	}
	plat := mhla.TwoLevel(app.L1)
	base := mhla.CacheConfigFor(plat, 0, 0)
	for _, kind := range []mhla.Prefetcher{mhla.PrefetchNone, mhla.PrefetchNextLine, mhla.PrefetchStride} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			cfg := mhla.CacheConfig{Levels: append([]mhla.CacheLevel(nil), base.Levels...), MaxAccesses: 20_000_000}
			for i := range cfg.Levels {
				cfg.Levels[i].Prefetcher = kind
				if kind != mhla.PrefetchNone {
					cfg.Levels[i].PrefetchLatency = 4
				}
			}
			var res *mhla.CacheResult
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				res, err = mhla.Simulate(context.Background(), prog, cfg,
					mhla.WithPlatform(plat), mhla.WithWorkspace(ws))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			perOp := b.Elapsed().Seconds() / float64(b.N)
			b.ReportMetric(float64(res.Accesses)/perOp/1e6, "macc_per_s")
			l1 := res.Levels[0]
			b.ReportMetric(100*float64(l1.Hits)/float64(l1.Accesses), "hit_pct")
			b.ReportMetric(100*float64(l1.PrefetchHits)/float64(l1.Accesses), "pf_pct")
		})
	}
}

// BenchmarkAblationWrites quantifies the write-back overlap extension
// (A4, beyond the paper's Figure 1): plan TE with and without
// ExtendWrites and report the remaining stall cycles.
func BenchmarkAblationWrites(b *testing.B) {
	for _, name := range []string{"wavelet", "cavity"} {
		app, err := apps.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		prog := app.Build(apps.Paper)
		an, err := mhla.Analyze(prog)
		if err != nil {
			b.Fatal(err)
		}
		sr, err := mhla.Search(context.Background(), an, mhla.TwoLevel(app.L1))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			var def, wr *mhla.Plan
			for i := 0; i < b.N; i++ {
				def, err = mhla.Extend(sr.Assignment)
				if err != nil {
					b.Fatal(err)
				}
				wr, err = mhla.ExtendWithWrites(sr.Assignment)
				if err != nil {
					b.Fatal(err)
				}
			}
			dc := def.Assignment.Evaluate(mhla.EvalOptions{Hidden: def.Hidden()})
			wc := wr.Assignment.Evaluate(mhla.EvalOptions{Hidden: wr.Hidden()})
			b.ReportMetric(float64(dc.StallCycles), "stall_default")
			b.ReportMetric(float64(wc.StallCycles), "stall_writes")
		})
	}
}

// BenchmarkHierarchyDepth compares the two-level figure platform
// against a three-level hierarchy at equal total on-chip capacity
// (A5).
func BenchmarkHierarchyDepth(b *testing.B) {
	for _, name := range []string{"me", "qsdpcm"} {
		app, err := apps.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		prog := app.Build(apps.Paper)
		b.Run(name, func(b *testing.B) {
			var two, three *mhla.Result
			for i := 0; i < b.N; i++ {
				var err error
				two, err = mhla.Run(context.Background(), prog, mhla.WithL1(app.L1))
				if err != nil {
					b.Fatal(err)
				}
				three, err = mhla.Run(context.Background(), prog,
					mhla.WithPlatform(mhla.ThreeLevel(app.L1/4, app.L1-app.L1/4)))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*two.Gains().MHLAEnergy, "two_level_energy_pct")
			b.ReportMetric(100*three.Gains().MHLAEnergy, "three_level_energy_pct")
		})
	}
}

// BenchmarkAblationBlocking measures the loop-transformation
// pre-step (A6): MHLA on a naive matrix multiply against the
// tile+interchange blocked version.
func BenchmarkAblationBlocking(b *testing.B) {
	const n = 64
	build := func() *mhla.Program {
		p := mhla.NewProgram("matmul")
		ma := p.NewInput("a", 2, n, n)
		mb := p.NewInput("b", 2, n, n)
		mc := p.NewOutput("c", 2, n, n)
		p.AddBlock("mm",
			mhla.For("i", n, mhla.For("j", n,
				mhla.For("k", n,
					mhla.Load(ma, mhla.Idx("i"), mhla.Idx("k")),
					mhla.Load(mb, mhla.Idx("k"), mhla.Idx("j")),
					mhla.Work(2),
				),
				mhla.Store(mc, mhla.Idx("i"), mhla.Idx("j")))))
		return p
	}
	var naive, blocked *mhla.Result
	for i := 0; i < b.N; i++ {
		p := build()
		tiled, err := mhla.Tile(p, "mm", "j", 8)
		if err != nil {
			b.Fatal(err)
		}
		q, err := mhla.Interchange(tiled, "mm", "i")
		if err != nil {
			b.Fatal(err)
		}
		plat := mhla.TwoLevel(4096)
		naive, err = mhla.Run(context.Background(), p, mhla.WithPlatform(plat))
		if err != nil {
			b.Fatal(err)
		}
		blocked, err = mhla.Run(context.Background(), q, mhla.WithPlatform(plat))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(naive.MHLA.Energy/blocked.MHLA.Energy, "blocking_energy_x")
	b.ReportMetric(float64(naive.MHLA.Cycles)/float64(blocked.MHLA.Cycles), "blocking_cycles_x")
}

// BenchmarkEventSimulator measures the event-driven DMA timeline
// simulator on paper-scale motion estimation.
func BenchmarkEventSimulator(b *testing.B) {
	app, err := apps.ByName("me")
	if err != nil {
		b.Fatal(err)
	}
	res, err := mhla.Run(context.Background(), app.Build(apps.Paper), mhla.WithL1(app.L1))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := mhla.SimulateDMA(res.Plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLayout measures the in-place address mapper across the
// nine figure assignments.
func BenchmarkLayout(b *testing.B) {
	var plans []*mhla.Plan
	for _, app := range apps.All() {
		res, err := mhla.Run(context.Background(), app.Build(apps.Paper), mhla.WithL1(app.L1))
		if err != nil {
			b.Fatal(err)
		}
		plans = append(plans, res.Plan)
	}
	b.ResetTimer()
	var frag int64
	for i := 0; i < b.N; i++ {
		frag = 0
		for _, plan := range plans {
			maps, err := mhla.Layout(plan.Assignment)
			if err != nil {
				b.Fatal(err)
			}
			for _, m := range maps {
				frag += m.Fragmentation()
			}
		}
	}
	b.ReportMetric(float64(frag), "total_frag_bytes")
}

// BenchmarkMultiTask measures the future-work multi-task partitioning
// on three audio/image tasks sharing an 8 KiB scratchpad.
func BenchmarkMultiTask(b *testing.B) {
	var tasks []mhla.Task
	for _, name := range []string{"durbin", "voice", "sobel"} {
		app, err := apps.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		tasks = append(tasks, mhla.Task{Name: name, Program: app.Build(apps.Test)})
	}
	var plan *mhla.MultiTaskPlan
	for i := 0; i < b.N; i++ {
		var err error
		plan, err = mhla.Partition(tasks, 8192)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(plan.Used()), "bytes_used")
	b.ReportMetric(plan.TotalEnergy, "total_pj")
}
