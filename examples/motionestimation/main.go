// Motion estimation walk-through: the paper's flagship workload.
// Shows the reuse chains the analysis derives, the layer assignment,
// the Figure-1 prefetch plan, and the four operating points.
//
//	go run ./examples/motionestimation
package main

import (
	"context"
	"fmt"
	"log"

	"mhla/internal/apps"
	"mhla/pkg/mhla"
)

func main() {
	// CIF-like frame with a wider search range than the default.
	params := apps.MEParams{
		FrameH: 144, FrameW: 176,
		Block: 16, Search: 8,
		MatchCycles: 6,
	}
	p := apps.BuildMEWith(params)

	// Inspect the reuse chains before assigning: every loop level of
	// every access offers a copy candidate with its footprint and
	// transfer volume.
	an, err := mhla.Analyze(p)
	if err != nil {
		log.Fatal(err)
	}
	for _, ch := range an.Chains {
		fmt.Println(ch)
		for lv := 0; lv <= ch.Depth(); lv++ {
			c := ch.Candidate(lv)
			fmt.Printf("  level %d: %v  slide=%dB refetch=%dB\n",
				lv, c, c.TotalBytes(mhla.Slide), c.TotalBytes(mhla.Refetch))
		}
	}

	// Full flow on a 2 KiB scratchpad: the assignment step picks the
	// current-block and search-window copies; the TE step prefetches
	// their block transfers behind the matching loops.
	res, err := mhla.Run(context.Background(), p, mhla.WithL1(2048))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(res.Assignment)
	fmt.Println()
	fmt.Print(res.Plan)
	fmt.Println()
	fmt.Print(res.Summary())
	fmt.Printf("\nTE hides %.0f%% of the remaining MHLA cycles (paper: up to 33%%)\n",
		100*res.TEBoost())
}
