// Loop blocking before MHLA: the DTSE flow runs loop transformations
// ahead of the layer assignment to create reuse that the original
// nest cannot expose. This example blocks a matrix multiply (tile the
// column loop, hoist the tile loop outward) and compares the MHLA
// outcomes.
//
//	go run ./examples/blocking
package main

import (
	"context"
	"fmt"
	"log"

	"mhla/pkg/mhla"
)

func main() {
	const n = 64
	p := mhla.NewProgram("matmul")
	a := p.NewInput("a", 2, n, n)
	b := p.NewInput("b", 2, n, n)
	c := p.NewOutput("c", 2, n, n)
	p.AddBlock("mm",
		mhla.For("i", n,
			mhla.For("j", n,
				mhla.For("k", n,
					mhla.Load(a, mhla.Idx("i"), mhla.Idx("k")),
					mhla.Load(b, mhla.Idx("k"), mhla.Idx("j")),
					mhla.Work(2),
				),
				mhla.Store(c, mhla.Idx("i"), mhla.Idx("j")),
			)))

	// Classic blocking: strip-mine j by 8, then hoist j_o above i so
	// the 64x8 strip of B stays live across the whole i sweep.
	tiled, err := mhla.Tile(p, "mm", "j", 8)
	if err != nil {
		log.Fatal(err)
	}
	blocked, err := mhla.Interchange(tiled, "mm", "i")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("blocked nest:")
	fmt.Print(blocked)

	ctx := context.Background()
	plat := mhla.TwoLevel(4096)
	before, err := mhla.Run(ctx, p, mhla.WithPlatform(plat))
	if err != nil {
		log.Fatal(err)
	}
	after, err := mhla.Run(ctx, blocked, mhla.WithPlatform(plat))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(before.Summary())
	fmt.Println()
	fmt.Print(after.Summary())
	fmt.Printf("\nblocking improves the MHLA point by %.1fx energy and %.1fx cycles\n",
		before.MHLA.Energy/after.MHLA.Energy,
		float64(before.MHLA.Cycles)/float64(after.MHLA.Cycles))
}
