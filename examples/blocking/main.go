// Loop blocking before MHLA: the DTSE flow runs loop transformations
// ahead of the layer assignment to create reuse that the original
// nest cannot expose. This example blocks a matrix multiply (tile the
// column loop, hoist the tile loop outward) and compares the MHLA
// outcomes.
//
//	go run ./examples/blocking
package main

import (
	"fmt"
	"log"

	"mhla/internal/core"
	"mhla/internal/energy"
	"mhla/internal/model"
	"mhla/internal/transform"
)

func main() {
	const n = 64
	p := model.NewProgram("matmul")
	a := p.NewInput("a", 2, n, n)
	b := p.NewInput("b", 2, n, n)
	c := p.NewOutput("c", 2, n, n)
	p.AddBlock("mm",
		model.For("i", n,
			model.For("j", n,
				model.For("k", n,
					model.Load(a, model.Idx("i"), model.Idx("k")),
					model.Load(b, model.Idx("k"), model.Idx("j")),
					model.Work(2),
				),
				model.Store(c, model.Idx("i"), model.Idx("j")),
			)))

	// Classic blocking: strip-mine j by 8, then hoist j_o above i so
	// the 64x8 strip of B stays live across the whole i sweep.
	tiled, err := transform.Tile(p, "mm", "j", 8)
	if err != nil {
		log.Fatal(err)
	}
	blocked, err := transform.Interchange(tiled, "mm", "i")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("blocked nest:")
	fmt.Print(blocked)

	plat := energy.TwoLevel(4096)
	before, err := core.Run(p, core.Config{Platform: plat})
	if err != nil {
		log.Fatal(err)
	}
	after, err := core.Run(blocked, core.Config{Platform: plat})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(before.Summary())
	fmt.Println()
	fmt.Print(after.Summary())
	fmt.Printf("\nblocking improves the MHLA point by %.1fx energy and %.1fx cycles\n",
		before.MHLA.Energy/after.MHLA.Energy,
		float64(before.MHLA.Cycles)/float64(after.MHLA.Cycles))
}
