// Quickstart: model a small kernel, run the full MHLA+TE flow on a
// two-level platform, and print the four operating points.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mhla/internal/core"
	"mhla/internal/energy"
	"mhla/internal/model"
)

func main() {
	// A 64-entry lookup table scanned 32 times: classic data reuse.
	p := model.NewProgram("quickstart")
	tbl := p.NewInput("tbl", 2, 64)
	out := p.NewOutput("out", 2, 32)
	p.AddBlock("scan",
		model.For("rep", 32,
			model.For("i", 64,
				model.Load(tbl, model.Idx("i")),
				model.Work(2),
			),
			model.Store(out, model.Idx("rep")),
		),
	)
	fmt.Print(p)

	// Run the two-step exploration on a 1 KiB scratchpad + SDRAM.
	res, err := core.Run(p, core.Config{Platform: energy.TwoLevel(1024)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(res.Assignment)
	fmt.Println()
	fmt.Print(res.Summary())

	// Cross-check the analytical counts with the element-level trace
	// simulator.
	if err := res.Verify(0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntrace verification: analytical and simulated counts agree")
}
