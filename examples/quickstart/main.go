// Quickstart: model a small kernel with the pkg/mhla facade, run the
// full MHLA+TE flow on a two-level platform, and print the four
// operating points.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"mhla/pkg/mhla"
)

func main() {
	// A 64-entry lookup table scanned 32 times: classic data reuse.
	p := mhla.NewProgram("quickstart")
	tbl := p.NewInput("tbl", 2, 64)
	out := p.NewOutput("out", 2, 32)
	p.AddBlock("scan",
		mhla.For("rep", 32,
			mhla.For("i", 64,
				mhla.Load(tbl, mhla.Idx("i")),
				mhla.Work(2),
			),
			mhla.Store(out, mhla.Idx("rep")),
		),
	)
	fmt.Print(p)

	// Run the two-step exploration on a 1 KiB scratchpad + SDRAM.
	// Options select the platform; engine, objective and policy keep
	// their defaults (greedy, energy, slide).
	res, err := mhla.Run(context.Background(), p, mhla.WithL1(1024))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(res.Assignment)
	fmt.Println()
	fmt.Print(res.Summary())

	// Cross-check the analytical counts with the element-level trace
	// simulator.
	if err := res.Verify(0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntrace verification: analytical and simulated counts agree")
}
