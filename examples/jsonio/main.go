// JSON interchange: export an application model and a platform to
// JSON, reload them, and run the flow — the path an external
// front-end (e.g. a C loop-nest extractor) would use to feed the
// tool.
//
//	go run ./examples/jsonio
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"mhla/internal/apps"
	"mhla/pkg/mhla"
)

func main() {
	dir, err := os.MkdirTemp("", "mhla-jsonio")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Export the Sobel model and a 4 KiB platform.
	app, err := apps.ByName("sobel")
	if err != nil {
		log.Fatal(err)
	}
	prog := app.Build(apps.Test)
	progJSON, err := mhla.EncodeProgram(prog)
	if err != nil {
		log.Fatal(err)
	}
	platJSON, err := mhla.EncodePlatform(mhla.TwoLevel(4096))
	if err != nil {
		log.Fatal(err)
	}
	progPath := filepath.Join(dir, "sobel.json")
	platPath := filepath.Join(dir, "platform.json")
	if err := os.WriteFile(progPath, progJSON, 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(platPath, platJSON, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes) and %s (%d bytes)\n",
		progPath, len(progJSON), platPath, len(platJSON))

	// Reload both and run the flow — equivalent to:
	//   mhla -model sobel.json -platform platform.json
	progData, err := os.ReadFile(progPath)
	if err != nil {
		log.Fatal(err)
	}
	platData, err := os.ReadFile(platPath)
	if err != nil {
		log.Fatal(err)
	}
	reloaded, err := mhla.DecodeProgram(progData)
	if err != nil {
		log.Fatal(err)
	}
	plat, err := mhla.DecodePlatform(platData)
	if err != nil {
		log.Fatal(err)
	}
	res, err := mhla.Run(context.Background(), reloaded, mhla.WithPlatform(plat))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(res.Summary())
}
