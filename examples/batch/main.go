// Concurrent batch exploration: fan an application x L1-size x
// objective grid out over the Explorer worker pool, with live
// progress, a wall-clock budget enforced through context, and a
// deterministic batch report regardless of worker scheduling.
//
//	go run ./examples/batch
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"mhla/internal/apps"
	"mhla/pkg/mhla"
)

func main() {
	// Three applications, four scratchpad sizes, two objectives:
	// 24 full MHLA+TE flow runs.
	grid := mhla.Grid{
		L1Sizes:    []int64{512, 1024, 2048, 4096},
		Objectives: []mhla.Objective{mhla.Energy, mhla.Time},
	}
	for _, name := range []string{"me", "durbin", "sobel"} {
		app, err := apps.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		grid.Apps = append(grid.Apps, mhla.GridApp{Name: app.Name, Program: app.Build(apps.Paper)})
	}
	jobs := grid.Jobs()

	// The whole batch shares one deadline; a cancelled batch returns
	// promptly with ctx.Err() and marks unfinished jobs.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	ex := mhla.Explorer{
		Progress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d jobs", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		},
	}
	start := time.Now()
	results, err := ex.Explore(ctx, jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d jobs in %v\n\n", len(results), time.Since(start).Round(time.Millisecond))
	fmt.Print(mhla.BatchReport(results))
}
