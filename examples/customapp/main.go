// Modelling a new application: a tiled matrix multiply written with
// the builder API, demonstrating multi-block lifetimes (the in-place
// optimization) and how to read the exploration results.
//
//	go run ./examples/customapp
package main

import (
	"fmt"
	"log"

	"mhla/internal/core"
	"mhla/internal/energy"
	"mhla/internal/model"
)

func main() {
	const n = 48 // matrices are n x n, 16-bit elements

	p := model.NewProgram("matmul")
	a := p.NewInput("a", 2, n, n)
	b := p.NewInput("b", 2, n, n)
	c := p.NewArray("c", 2, n, n)
	out := p.NewOutput("out", 2, n, n)

	// Phase 1: C = A x B. The innermost loop walks a row of A and a
	// column of B; the column walk is the expensive off-chip pattern.
	p.AddBlock("multiply",
		model.For("i", n,
			model.For("j", n,
				model.For("k", n,
					model.Load(a, model.Idx("i"), model.Idx("k")),
					model.Load(b, model.Idx("k"), model.Idx("j")),
					model.Work(2),
				),
				model.Store(c, model.Idx("i"), model.Idx("j")),
			),
		),
	)

	// Phase 2: clamp/scale C into the output. After this block C is
	// dead — the in-place estimator lets its on-chip copies share
	// space with phase-1 buffers.
	p.AddBlock("postscale",
		model.For("i", n,
			model.For("j", n,
				model.Load(c, model.Idx("i"), model.Idx("j")),
				model.Work(3),
				model.Store(out, model.Idx("i"), model.Idx("j")),
			),
		),
	)

	if err := p.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Print(p)

	res, err := core.Run(p, core.Config{Platform: energy.TwoLevel(2048)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(res.Assignment)
	fmt.Println()
	fmt.Print(res.Summary())

	// The analytical counts are exact; prove it on this program.
	if err := res.Verify(0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntrace verification: counts agree")
}
