// Modelling a new application: a tiled matrix multiply written with
// the facade's builder API, demonstrating multi-block lifetimes (the
// in-place optimization) and how to read the exploration results.
//
//	go run ./examples/customapp
package main

import (
	"context"
	"fmt"
	"log"

	"mhla/pkg/mhla"
)

func main() {
	const n = 48 // matrices are n x n, 16-bit elements

	p := mhla.NewProgram("matmul")
	a := p.NewInput("a", 2, n, n)
	b := p.NewInput("b", 2, n, n)
	c := p.NewArray("c", 2, n, n)
	out := p.NewOutput("out", 2, n, n)

	// Phase 1: C = A x B. The innermost loop walks a row of A and a
	// column of B; the column walk is the expensive off-chip pattern.
	p.AddBlock("multiply",
		mhla.For("i", n,
			mhla.For("j", n,
				mhla.For("k", n,
					mhla.Load(a, mhla.Idx("i"), mhla.Idx("k")),
					mhla.Load(b, mhla.Idx("k"), mhla.Idx("j")),
					mhla.Work(2),
				),
				mhla.Store(c, mhla.Idx("i"), mhla.Idx("j")),
			),
		),
	)

	// Phase 2: clamp/scale C into the output. After this block C is
	// dead — the in-place estimator lets its on-chip copies share
	// space with phase-1 buffers.
	p.AddBlock("postscale",
		mhla.For("i", n,
			mhla.For("j", n,
				mhla.Load(c, mhla.Idx("i"), mhla.Idx("j")),
				mhla.Work(3),
				mhla.Store(out, mhla.Idx("i"), mhla.Idx("j")),
			),
		),
	)

	if err := p.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Print(p)

	res, err := mhla.Run(context.Background(), p, mhla.WithL1(2048))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(res.Assignment)
	fmt.Println()
	fmt.Print(res.Summary())

	// The analytical counts are exact; prove it on this program.
	if err := res.Verify(0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntrace verification: counts agree")
}
