// Trade-off exploration: sweep the on-chip size for the QSDPCM video
// encoder and print the energy/performance trade-off curve and its
// Pareto frontier — the exploration the paper positions MHLA for.
//
//	go run ./examples/tradeoff
package main

import (
	"context"
	"fmt"
	"log"

	"mhla/internal/apps"
	"mhla/pkg/mhla"
)

func main() {
	app, err := apps.ByName("qsdpcm")
	if err != nil {
		log.Fatal(err)
	}
	sizes := []int64{256, 512, 1024, 2048, 4096, 8192, 16384}
	sw, err := mhla.SweepL1(context.Background(), app.Build(apps.Paper), sizes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sw)

	fmt.Println("\nPareto frontier of the MHLA+TE points:")
	fmt.Print(mhla.ParetoRender(sw.Frontier()))

	fmt.Println("\nReading the curve: small scratchpads leave traffic off-chip")
	fmt.Println("(high energy, slow); very large ones cost more per access.")
	fmt.Println("The frontier points are the sizes a designer would pick from.")
}
