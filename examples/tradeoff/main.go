// Trade-off exploration: sweep the on-chip size for the QSDPCM video
// encoder and print the energy/performance trade-off curve and its
// Pareto frontier — the exploration the paper positions MHLA for.
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"

	"mhla/internal/apps"
	"mhla/internal/assign"
	"mhla/internal/explore"
	"mhla/internal/pareto"
)

func main() {
	app, err := apps.ByName("qsdpcm")
	if err != nil {
		log.Fatal(err)
	}
	sizes := []int64{256, 512, 1024, 2048, 4096, 8192, 16384}
	sw, err := explore.Run(app.Build(apps.Paper), sizes, assign.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sw)

	fmt.Println("\nPareto frontier of the MHLA+TE points:")
	front := sw.Frontier()
	fmt.Print(pareto.Render(front))

	fmt.Println("\nReading the curve: small scratchpads leave traffic off-chip")
	fmt.Println("(high energy, slow); very large ones cost more per access.")
	fmt.Println("The frontier points are the sizes a designer would pick from.")
}
