package mhla_test

// TestWriteWorkspaceSweepBench regenerates BENCH_WORKSPACE_SWEEP.json
// from the live BenchmarkWorkspaceSweep sub-benchmarks, with the host
// block collected automatically (internal/benchmeta) — the ROADMAP
// rule is that every performance claim carries the host it was
// measured on, and hand-written host blocks drift. Gated behind an
// env var so `go test ./...` never rewrites checked-in files:
//
//	MHLA_BENCH_JSON=1 go test -run TestWriteWorkspaceSweepBench -timeout 1800s .
import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"mhla/internal/benchmeta"
)

func TestWriteWorkspaceSweepBench(t *testing.T) {
	if os.Getenv("MHLA_BENCH_JSON") == "" {
		t.Skip("set MHLA_BENCH_JSON=1 to regenerate BENCH_WORKSPACE_SWEEP.json")
	}
	results := map[string]map[string]any{}
	for _, c := range workspaceSweepBenches(t.Fatal) {
		r := testing.Benchmark(c.fn)
		entry := map[string]any{
			"ns_per_op":     r.NsPerOp(),
			"bytes_per_op":  r.AllocedBytesPerOp(),
			"allocs_per_op": r.AllocsPerOp(),
			"iterations":    r.N,
		}
		for metric, v := range r.Extra {
			entry[metric] = v
		}
		results[c.name] = entry
		t.Logf("%s: %v", c.name, r)
	}

	coldNs := results["bnb-fresh/workers=1"]["ns_per_op"].(int64)
	warmNs := results["bnb-warm/workers=1"]["ns_per_op"].(int64)
	coldStates := results["bnb-fresh/workers=1"]["bnb_states"].(float64)
	warmStates := results["bnb-warm/workers=1"]["bnb_states"].(float64)
	sharedNs := results["shared/workers=1"]["ns_per_op"].(int64)
	freshNs := results["fresh/workers=1"]["ns_per_op"].(int64)

	doc := map[string]any{
		"benchmark":   "BenchmarkWorkspaceSweep",
		"description": "Standard 17-point L1 sweep (256B..64KiB half-power ladder). Greedy family: fresh per-point flow runs (validate + reuse-analyze + program-side tables rebuilt at every sweep point) vs one compile-once workspace shared read-only by all points, on qsdpcm at paper scale. Exact family: branch-and-bound at every point on the heaviest tractable progen scenario (the paper apps are intractable for exact search) — independent cold-seeded searches vs the incremental chained sweep (ascending sizes, each point warm-started from its predecessor's re-scored optimum, sharing the workspace-cached option catalogs). Summed MHLA+TE cycles verified identical within each family on every iteration; the warm chain only shrinks the explored state count.",
		"command":     "MHLA_BENCH_JSON=1 go test -run TestWriteWorkspaceSweepBench -timeout 1800s .",
		"host":        benchmeta.Collect(),
		"date":        time.Now().UTC().Format("2006-01-02"),
		"results":     results,
		"summary": map[string]any{
			"warm_vs_cold_bnb_speedup": round2(float64(coldNs) / float64(warmNs)),
			"warm_vs_cold_bnb_states_ratio": round2(func() float64 {
				if warmStates == 0 {
					return 0
				}
				return coldStates / warmStates
			}()),
			"shared_vs_fresh_greedy_speedup": round2(float64(freshNs) / float64(sharedNs)),
			"note": fmt.Sprintf("bnb-warm vs bnb-fresh: the chained warm-started sweep runs the 17-point exact sweep %.1fx faster by exploring %.1fx fewer states (byte-identical results); the greedy family isolates the compile-once workspace win (%.2fx at workers=1). Single-CPU hosts cannot show workers=4 wall-clock wins.",
				float64(coldNs)/float64(warmNs), coldStates/warmStates, float64(freshNs)/float64(sharedNs)),
		},
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_WORKSPACE_SWEEP.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_WORKSPACE_SWEEP.json: bnb warm speedup %.2fx", float64(coldNs)/float64(warmNs))
}

func round2(x float64) float64 { return float64(int64(x*100+0.5)) / 100 }
