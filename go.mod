module mhla

go 1.24
