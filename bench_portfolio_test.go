package mhla_test

// BenchmarkPortfolio measures the portfolio engine's anytime win: on
// a deliberately intractable progen scenario (decision space ~3.4e10
// leaves — hours for exact search) the portfolio races greedy, a
// budget-restricted branch and bound and the seeded LNS engine under
// a 100ms deadline and returns the best incumbent. The companion
// TestWritePortfolioBench regenerates BENCH_PORTFOLIO.json from these
// exact sub-benchmarks.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"mhla/internal/progen"
	"mhla/pkg/mhla"
)

// portfolioBenchConfig generates the intractable flagship scenario:
// seed 11 of this config has a 3.4e10-leaf decision space on which
// the LNS member beats the greedy score by ~65% within the 100ms
// deadline (branch and bound cannot finish the proof).
var portfolioBenchConfig = progen.Config{
	MaxArrays: 6, MaxBlocks: 3, MaxNests: 3, MaxDepth: 3,
	MaxAccesses: 4, MaxOnChip: 3, MaxSpace: 1_000_000_000_000,
}

const (
	portfolioBenchSeed     = 11
	portfolioBenchDeadline = 100 * time.Millisecond
)

type portfolioBenchCase struct {
	name string
	fn   func(b *testing.B)
}

// portfolioBenches builds the portfolio-vs-greedy pair on the
// flagship scenario. Both sub-benchmarks report their achieved
// objective score so the JSON writer (and CI logs) carry the anytime
// win, not just the wall-clock.
func portfolioBenches(fatal func(...any)) []portfolioBenchCase {
	sc := portfolioBenchConfig.Generate(portfolioBenchSeed)
	an, err := mhla.Analyze(sc.Program)
	if err != nil {
		fatal(err)
	}
	common := func(extra ...mhla.Option) []mhla.Option {
		return append([]mhla.Option{
			mhla.WithObjective(sc.Options.Objective),
			mhla.WithPolicy(sc.Options.Policy),
			mhla.WithSeed(portfolioBenchSeed),
		}, extra...)
	}
	search := func(b *testing.B, opts []mhla.Option) *mhla.SearchResult {
		res, err := mhla.Search(context.Background(), an, sc.Platform, opts...)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	return []portfolioBenchCase{
		{"greedy", func(b *testing.B) {
			b.ReportAllocs()
			var res *mhla.SearchResult
			for i := 0; i < b.N; i++ {
				res = search(b, common(mhla.WithEngine(mhla.Greedy)))
			}
			b.ReportMetric(sc.Options.Objective.Score(res.Cost), "score")
			b.ReportMetric(float64(res.States), "states")
		}},
		{fmt.Sprintf("portfolio/deadline=%v", portfolioBenchDeadline), func(b *testing.B) {
			b.ReportAllocs()
			var res *mhla.SearchResult
			for i := 0; i < b.N; i++ {
				res = search(b, common(
					mhla.WithEngine(mhla.Portfolio),
					mhla.WithDeadline(portfolioBenchDeadline),
					mhla.WithWorkers(4)))
			}
			greedyScore := sc.Options.Objective.Score(search(b, common(mhla.WithEngine(mhla.Greedy))).Cost)
			score := sc.Options.Objective.Score(res.Cost)
			if score > greedyScore*(1+1e-9) {
				b.Fatalf("portfolio score %v worse than plain greedy %v", score, greedyScore)
			}
			b.ReportMetric(score, "score")
			b.ReportMetric(float64(res.States), "states")
			b.ReportMetric(100*(greedyScore-score)/greedyScore, "win_pct")
			for _, run := range res.Portfolio {
				if run.Won {
					b.Logf("winner: %v (score %.6g, %d states)", run.Engine, run.Score, run.States)
				}
			}
		}},
	}
}

func BenchmarkPortfolio(b *testing.B) {
	for _, c := range portfolioBenches(b.Fatal) {
		b.Run(c.name, c.fn)
	}
}
