package mhla

import (
	"encoding/json"
	"fmt"

	"mhla/internal/explore"
	"mhla/internal/modelio"
)

// resultJSON mirrors the modelio schema conventions (snake_case keys)
// for machine consumption of a flow result — by construction the same
// shape as one point of Sweep.JSON (both embed the shared
// explore.ResultFields), plus the program and platform identity.
type resultJSON struct {
	App      string `json:"app"`
	Platform string `json:"platform"`
	explore.ResultFields
}

// ResultJSON renders a flow result as indented JSON following the
// modelio naming conventions: the four operating points (cycles and
// energies), the search state count and the TE applicability. The
// encoding is deterministic — equal results render to equal bytes —
// which is what lets the serving layer promise responses
// byte-identical to direct facade calls (the HTTP transport writes
// exactly these bytes).
func ResultJSON(r *Result) ([]byte, error) {
	if r == nil {
		return nil, fmt.Errorf("mhla: nil result")
	}
	out := resultJSON{
		App:          r.Program.Name,
		Platform:     r.Platform.Name,
		ResultFields: explore.ResultFieldsOf(r),
	}
	return json.MarshalIndent(out, "", "  ")
}

// ProgramDigest returns the hex SHA-256 digest of the program's
// canonical interchange encoding: same model, same digest, regardless
// of how the program was built or formatted on the wire. The serving
// layer keys its compiled-workspace cache on it; external caches can
// use it the same way.
func ProgramDigest(p *Program) (string, error) { return modelio.ProgramDigest(p) }
