package mhla

import (
	"context"

	"mhla/internal/assign"
	"mhla/internal/cachesim"
	"mhla/internal/trace"
)

// The cache-simulator backend re-exports. CacheConfig describes a
// hierarchy of set-associative LRU caches with optional prefetchers;
// Simulate replays the program's access trace through it — the
// hardware-managed counterpart of the analytical scratchpad models.
type (
	// CacheConfig configures one trace-driven simulation run.
	CacheConfig = cachesim.Config
	// CacheLevel describes one cache level of a CacheConfig.
	CacheLevel = cachesim.LevelConfig
	// CacheResult is the outcome of one simulation run.
	CacheResult = cachesim.Result
	// Prefetcher selects a cache level's prefetch algorithm.
	Prefetcher = cachesim.PrefetcherKind
)

// The prefetcher kinds of CacheLevel.Prefetcher.
const (
	PrefetchNone     = cachesim.PrefetchNone
	PrefetchNextLine = cachesim.PrefetchNextLine
	PrefetchStride   = cachesim.PrefetchStride
)

// ErrTraceLimit is wrapped by Simulate when the program's trace
// exceeds the configured (or default) access limit; test with
// errors.Is.
var ErrTraceLimit = trace.ErrLimit

// ParseCachePrefetcher parses a prefetcher name: "none", "nextline" or
// "stride".
func ParseCachePrefetcher(s string) (Prefetcher, error) { return cachesim.ParsePrefetcher(s) }

// CacheConfigFor derives a cache hierarchy matching a platform's
// on-chip layers: one level per layer with the requested associativity
// (0 = 4 ways) and line size (0 = 32 bytes), geometry capped to the
// layer capacity. Prefetchers are off; set CacheLevel.Prefetcher on
// the returned levels to enable them.
func CacheConfigFor(p *Platform, ways, lineBytes int) CacheConfig {
	return cachesim.ConfigFor(p, ways, lineBytes)
}

// Simulate replays the program's dynamic access trace through the
// configured cache hierarchy on the option-selected platform
// (WithPlatform/WithL1, default TwoLevel(DefaultL1)) and prices it
// with the platform cost model. An empty CacheConfig (no levels) is
// the no-cache anchor: it reproduces the analytical out-of-the-box
// cost exactly. With WithWorkspace the compiled analysis is reused;
// otherwise the program is compiled per call. Cancellation aborts the
// replay promptly with ctx.Err(). Equal inputs produce bit-identical
// results at any concurrency — the serving layer relies on it.
func Simulate(ctx context.Context, p *Program, cacheCfg CacheConfig, opts ...Option) (*CacheResult, error) {
	cfg := newConfig(opts)
	if cfg.err != nil {
		return nil, cfg.err
	}
	if err := cfg.checkWorkspace(p); err != nil {
		return nil, err
	}
	if err := cacheCfg.Validate(cfg.platform); err != nil {
		return nil, &assign.OptionError{Field: "CacheConfig", Reason: err.Error()}
	}
	ws := cfg.workspace
	if ws == nil {
		var err error
		ws, err = Compile(p)
		if err != nil {
			return nil, err
		}
	}
	return cachesim.Simulate(ctx, ws, cfg.platform, cacheCfg)
}

// SimulateJSON renders a simulation result as indented JSON, the same
// bytes /v1/simulate serves.
func SimulateJSON(r *CacheResult) ([]byte, error) { return r.JSON() }
