package mhla_test

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"mhla/internal/apps"
	"mhla/pkg/mhla"
)

// testGrid is a small app x size x objective grid at test scale; the
// apps are given unsorted to exercise the deterministic ordering.
func testGrid(t *testing.T) mhla.Grid {
	t.Helper()
	grid := mhla.Grid{
		L1Sizes:    []int64{1024, 512},
		Objectives: []mhla.Objective{mhla.Energy, mhla.Time},
	}
	for _, name := range []string{"sobel", "durbin"} {
		app, err := apps.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		grid.Apps = append(grid.Apps, mhla.GridApp{Name: app.Name, Program: app.Build(apps.Test)})
	}
	return grid
}

func TestGridJobsDeterministic(t *testing.T) {
	jobs := testGrid(t).Jobs()
	want := []string{
		"durbin/l1=512/energy", "durbin/l1=512/time",
		"durbin/l1=1024/energy", "durbin/l1=1024/time",
		"sobel/l1=512/energy", "sobel/l1=512/time",
		"sobel/l1=1024/energy", "sobel/l1=1024/time",
	}
	if len(jobs) != len(want) {
		t.Fatalf("got %d jobs, want %d", len(jobs), len(want))
	}
	for i, j := range jobs {
		if j.Label != want[i] {
			t.Errorf("job %d label %q, want %q", i, j.Label, want[i])
		}
	}
}

// TestExplorerDeterministicOrder runs the same batch concurrently and
// sequentially and requires identical results in identical order —
// the property golden batch reports rely on.
func TestExplorerDeterministicOrder(t *testing.T) {
	jobs := testGrid(t).Jobs()
	ctx := context.Background()

	concurrent := mhla.Explorer{Workers: 8}
	got, err := concurrent.Explore(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	sequential := mhla.Explorer{Workers: 1}
	want, err := sequential.Explore(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}

	if len(got) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(got), len(jobs))
	}
	for i := range got {
		if got[i].Err != nil || want[i].Err != nil {
			t.Fatalf("job %q failed: %v / %v", jobs[i].Label, got[i].Err, want[i].Err)
		}
		if got[i].Label != jobs[i].Label {
			t.Errorf("result %d label %q, want %q", i, got[i].Label, jobs[i].Label)
		}
		g, w := got[i].Result, want[i].Result
		if g.MHLA.Cycles != w.MHLA.Cycles || g.MHLA.Energy != w.MHLA.Energy ||
			g.TE.Cycles != w.TE.Cycles {
			t.Errorf("job %q: concurrent %+v != sequential %+v", jobs[i].Label, g.MHLA, w.MHLA)
		}
	}
	if r1, r2 := mhla.BatchReport(got), mhla.BatchReport(want); r1 != r2 {
		t.Errorf("batch reports differ:\n%s\nvs\n%s", r1, r2)
	}
}

// TestExplorerPerJobError checks one failing job does not poison the
// batch: its error is captured in place, the rest succeed.
func TestExplorerPerJobError(t *testing.T) {
	jobs := testGrid(t).Jobs()
	bad := mhla.NewProgram("empty") // no blocks: fails validation
	jobs = append([]mhla.Job{{Label: "bad", Program: bad}}, jobs...)

	ex := mhla.Explorer{Workers: 4}
	results, err := ex.Explore(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Error("invalid job reported no error")
	}
	for _, r := range results[1:] {
		if r.Err != nil {
			t.Errorf("job %q failed: %v", r.Label, r.Err)
		}
	}
	report := mhla.BatchReport(results)
	if !strings.Contains(report, "bad") || !strings.Contains(report, "error:") {
		t.Errorf("batch report lacks the error row:\n%s", report)
	}
	csv := mhla.BatchCSV(results)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != len(results)+1 {
		t.Fatalf("batch CSV has %d lines, want %d:\n%s", len(lines), len(results)+1, csv)
	}
	if !strings.HasPrefix(lines[1], "bad,,") || !strings.Contains(lines[1], "no blocks") {
		t.Errorf("batch CSV error row malformed: %q", lines[1])
	}
}

// TestExplorerCancelPromptly cancels a batch of expensive jobs and
// requires a prompt ctx.Err() return with unfinished jobs marked.
func TestExplorerCancelPromptly(t *testing.T) {
	prog := hugeProgram()
	var jobs []mhla.Job
	for i := 0; i < 16; i++ {
		jobs = append(jobs, mhla.Job{
			Label:   "slow",
			Program: prog,
			Options: []mhla.Option{
				mhla.WithPlatform(mhla.ThreeLevel(4096, 32768)),
				mhla.WithEngine(mhla.Exhaustive),
				mhla.WithMaxStates(1 << 40),
			},
		})
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	ex := mhla.Explorer{Workers: 2}
	results, err := ex.Explore(ctx, jobs)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
	if err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	failed := 0
	for i, r := range results {
		if r.Err != nil {
			failed++
		}
		// The one-of contract must hold for every job, including
		// those the cancelled feed loop never dispatched.
		if (r.Result == nil) == (r.Err == nil) {
			t.Errorf("job %d violates the one-of-Result-and-Err contract: %+v", i, r)
		}
	}
	if failed == 0 {
		t.Error("no job carries the cancellation error")
	}
}

// TestExplorerProgress checks completion callbacks arrive once per
// job with a consistent total.
func TestExplorerProgress(t *testing.T) {
	jobs := testGrid(t).Jobs()
	var mu sync.Mutex
	var calls int
	var totals []int
	ex := mhla.Explorer{
		Workers: 4,
		Progress: func(done, total int) {
			mu.Lock()
			calls++
			totals = append(totals, total)
			mu.Unlock()
		},
	}
	if _, err := ex.Explore(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if calls != len(jobs) {
		t.Errorf("got %d progress callbacks, want %d", calls, len(jobs))
	}
	for _, total := range totals {
		if total != len(jobs) {
			t.Errorf("progress total %d, want %d", total, len(jobs))
		}
	}
}
