package mhla

import (
	"mhla/internal/energy"
	"mhla/internal/platform"
)

// TwoLevel is the standard experiment platform of the paper's
// figures: an L1 scratchpad of the given byte capacity over SDRAM,
// with a DMA engine for block transfers.
func TwoLevel(l1 int64) *Platform { return energy.TwoLevel(l1) }

// TwoLevelNoDMA is TwoLevel without the DMA engine; time extensions
// are then not applicable.
func TwoLevelNoDMA(l1 int64) *Platform { return energy.TwoLevelNoDMA(l1) }

// ThreeLevel is a deeper hierarchy: L1 and L2 scratchpads of the
// given byte capacities over SDRAM, with DMA.
func ThreeLevel(l1, l2 int64) *Platform { return energy.ThreeLevel(l1, l2) }

// SRAMLayer models an on-chip SRAM layer of the given capacity with
// the energy model's per-access costs.
func SRAMLayer(name string, capacity int64) Layer { return energy.SRAMLayer(name, capacity) }

// SDRAMLayer models the off-chip background memory.
func SDRAMLayer() Layer { return energy.SDRAMLayer() }

// DefaultDMA is the block-transfer engine of the experiment
// platforms.
func DefaultDMA() *DMA { return energy.DefaultDMA() }

// NewPlatform assembles a platform from CPU-nearest-first layers and
// an optional DMA engine.
func NewPlatform(name string, layers []Layer, dma *DMA) *Platform {
	return &platform.Platform{Name: name, Layers: layers, DMA: dma}
}
