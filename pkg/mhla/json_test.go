package mhla_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"mhla/pkg/mhla"
)

// jsonProgram is a small deterministic two-array kernel used by the
// facade JSON tests.
func jsonProgram() *mhla.Program {
	p := mhla.NewProgram("jsonfixture")
	src := p.NewInput("src", 2, 64)
	dst := p.NewOutput("dst", 2, 64)
	p.AddBlock("copy",
		mhla.For("i", 64,
			mhla.For("k", 8,
				mhla.Load(src, mhla.Idx("i")),
				mhla.Work(1),
			),
			mhla.Store(dst, mhla.Idx("i"))))
	return p
}

// TestResultJSONDeterministic: equal runs render to equal bytes, and
// the schema carries the four operating points in snake_case.
func TestResultJSONDeterministic(t *testing.T) {
	prog := jsonProgram()
	res1, err := mhla.Run(context.Background(), prog, mhla.WithL1(256))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := mhla.Run(context.Background(), prog, mhla.WithL1(256))
	if err != nil {
		t.Fatal(err)
	}
	b1, err := mhla.ResultJSON(res1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := mhla.ResultJSON(res2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("equal runs rendered differently:\n%s\n%s", b1, b2)
	}

	var decoded map[string]any
	if err := json.Unmarshal(b1, &decoded); err != nil {
		t.Fatalf("ResultJSON is not valid JSON: %v", err)
	}
	for _, key := range []string{
		"app", "platform", "orig_cycles", "mhla_cycles", "te_cycles",
		"ideal_cycles", "orig_pj", "mhla_pj", "search_states", "te_applicable", "engine",
	} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("ResultJSON missing key %q", key)
		}
	}
	if decoded["app"] != "jsonfixture" {
		t.Errorf("app = %v, want jsonfixture", decoded["app"])
	}

	if _, err := mhla.ResultJSON(nil); err == nil {
		t.Error("ResultJSON(nil) succeeded")
	}
}

// TestResultJSONMatchesSweepPointSchema pins the documented shape
// parity: every data field of one Sweep.JSON point (the snake_case
// schema /v1/sweep serves) appears in ResultJSON (the /v1/run schema)
// under the same key with the same value for the same flow
// configuration.
func TestResultJSONMatchesSweepPointSchema(t *testing.T) {
	prog := jsonProgram()
	sw, err := mhla.SweepL1(context.Background(), prog, []int64{256})
	if err != nil {
		t.Fatal(err)
	}
	swJSON, err := sw.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var sweep struct {
		Points []map[string]any `json:"points"`
	}
	if err := json.Unmarshal(swJSON, &sweep); err != nil {
		t.Fatal(err)
	}
	if len(sweep.Points) != 1 {
		t.Fatalf("sweep has %d points, want 1", len(sweep.Points))
	}
	point := sweep.Points[0]

	res, err := mhla.Run(context.Background(), prog, mhla.WithL1(256))
	if err != nil {
		t.Fatal(err)
	}
	resJSON, err := mhla.ResultJSON(res)
	if err != nil {
		t.Fatal(err)
	}
	var result map[string]any
	if err := json.Unmarshal(resJSON, &result); err != nil {
		t.Fatal(err)
	}

	for key, want := range point {
		if key == "l1_bytes" {
			// The point's size axis; ResultJSON carries the platform
			// name instead.
			continue
		}
		got, ok := result[key]
		if !ok {
			t.Errorf("ResultJSON missing sweep-point key %q", key)
			continue
		}
		if got != want {
			t.Errorf("key %q differs: run %v, sweep point %v", key, got, want)
		}
	}
}

// TestProgramDigestFacade: the facade digest is stable across the
// interchange round trip and distinguishes distinct models.
func TestProgramDigestFacade(t *testing.T) {
	p := jsonProgram()
	d1, err := mhla.ProgramDigest(p)
	if err != nil {
		t.Fatal(err)
	}
	data, err := mhla.EncodeProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := mhla.DecodeProgram(data)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := mhla.ProgramDigest(q)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("digest changed across round trip: %s != %s", d1, d2)
	}
	q.Name = "renamed"
	if d3, _ := mhla.ProgramDigest(q); d3 == d1 {
		t.Fatal("digest ignored the program name")
	}
}
