package mhla

import (
	"mhla/internal/assign"
	"mhla/internal/core"
	"mhla/internal/explore"
	"mhla/internal/layout"
	"mhla/internal/model"
	"mhla/internal/multitask"
	"mhla/internal/pareto"
	"mhla/internal/platform"
	"mhla/internal/report"
	"mhla/internal/reuse"
	"mhla/internal/te"
	"mhla/internal/workspace"
)

// The stable types of the flow, re-exported as aliases so values
// cross the facade boundary unchanged (methods included).
type (
	// Program is an application model: arrays plus top-level blocks
	// of loop nests with affine accesses.
	Program = model.Program
	// Array is one array of a program.
	Array = model.Array
	// Block is one top-level block (phase) of a program.
	Block = model.Block
	// Node is a statement of a loop body (Loop, Access or Compute).
	Node = model.Node
	// Expr is an affine index expression.
	Expr = model.Expr

	// Platform is the target architecture: memory layers plus an
	// optional DMA engine.
	Platform = platform.Platform
	// Layer is one memory layer of a platform.
	Layer = platform.Layer
	// DMA describes a platform's block-transfer engine.
	DMA = platform.DMA

	// Analysis is the data-reuse analysis: the copy-candidate chains
	// of a program.
	Analysis = reuse.Analysis
	// Workspace is the compile-once, platform-independent analysis of
	// one program (validation, reuse analysis, lifetime tables).
	// Compile one with Compile and reuse it across Run/SweepL1 calls
	// via WithWorkspace; the batch Explorer compiles one per distinct
	// program automatically.
	Workspace = workspace.Workspace
	// Chain is one reuse chain (an array's copy-candidate hierarchy
	// for one access group).
	Chain = reuse.Chain
	// Policy is the copy transfer policy (Slide or Refetch).
	Policy = reuse.Policy

	// Assignment is the MHLA step-1 decision: array homes plus
	// instantiated copy candidates per layer.
	Assignment = assign.Assignment
	// Cost is the evaluated performance and energy of an assignment.
	Cost = assign.Cost
	// EvalOptions select the assignment evaluation mode.
	EvalOptions = assign.EvalOptions
	// StreamKey identifies one block-transfer stream.
	StreamKey = assign.StreamKey
	// Objective selects what the search minimizes.
	Objective = assign.Objective
	// Engine selects the search algorithm by registry name.
	Engine = assign.Engine
	// EngineInfo describes one registered engine and its capability
	// flags (see Engines).
	EngineInfo = assign.EngineInfo
	// EngineRun is one portfolio member's provenance record
	// (SearchResult.Portfolio).
	EngineRun = assign.EngineRun
	// SearchResult is the outcome of the assignment step alone.
	SearchResult = assign.Result
	// SearchProgress is one snapshot of a running assignment search.
	SearchProgress = assign.Progress
	// OptionError is the typed rejection of an invalid option or
	// facade input (negative worker counts, non-positive L1 sizes,
	// platforms without layers, ...); recover it with errors.As.
	OptionError = assign.OptionError

	// Plan is the time-extension step-2 decision: the per-stream
	// prefetch schedule of the paper's Figure 1.
	Plan = te.Plan

	// Result is the outcome of the full flow: the assignment, the
	// plan, and the four operating points Original, MHLA, TE, Ideal.
	Result = core.Result
	// Gains are a result's operating points normalized against the
	// Original point, the way the paper's figures report them.
	Gains = core.Gains
	// Phase names a stage of the flow for progress reporting.
	Phase = core.Phase
	// Progress is a flow progress snapshot.
	Progress = core.Progress
	// ProgressFunc receives flow progress snapshots.
	ProgressFunc = core.ProgressFunc

	// Sweep is an L1-size trade-off exploration of one program.
	Sweep = explore.Sweep
	// SweepPoint is one evaluated size of a sweep.
	SweepPoint = explore.Point

	// ParetoPoint is one candidate of a trade-off frontier.
	ParetoPoint = pareto.Point

	// AppResult pairs an application name with its flow result for
	// the figure renderers.
	AppResult = report.AppResult

	// LayerMap is the concrete address layout of one memory layer.
	LayerMap = layout.LayerMap

	// Task is one application of a multi-task partitioning problem.
	Task = multitask.Task
	// MultiTaskPlan is a scratchpad partitioning across tasks.
	MultiTaskPlan = multitask.Plan
)

// The flow phases reported through WithProgress.
const (
	PhaseAnalyze  = core.PhaseAnalyze
	PhaseAssign   = core.PhaseAssign
	PhaseExtend   = core.PhaseExtend
	PhaseEvaluate = core.PhaseEvaluate
)

// Search objectives.
const (
	// Energy minimizes memory-subsystem energy (the primary MHLA
	// objective; performance improves alongside).
	Energy = assign.MinEnergy
	// Time minimizes execution cycles.
	Time = assign.MinTime
	// EDP minimizes the energy-delay product.
	EDP = assign.MinEDP
)

// Search engines.
const (
	// Greedy is the steepest-descent heuristic of the MHLA tool.
	Greedy = assign.Greedy
	// BnB explores the full decision space with lower-bound pruning;
	// optimal for small/medium problems.
	BnB = assign.BranchBound
	// Exhaustive explores the full decision space without pruning; a
	// reference for tests.
	Exhaustive = assign.Exhaustive
	// Stochastic is the seeded large-neighborhood search over
	// assignments: greedy-seeded, byte-reproducible per WithSeed,
	// anytime under WithDeadline.
	Stochastic = assign.Stochastic
	// Portfolio races Greedy, BnB and Stochastic under one
	// WithDeadline and returns the best incumbent with per-member
	// provenance.
	Portfolio = assign.Portfolio
)

// Copy transfer policies.
const (
	// Slide retains still-valid elements across copy updates
	// (exploits inter-iteration reuse).
	Slide = reuse.Slide
	// Refetch transfers the full box on every update (the ablation
	// baseline).
	Refetch = reuse.Refetch
)
