package mhla_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"mhla/internal/progen"
	"mhla/pkg/mhla"
)

// TestSearchWorkersDeterministic drives the parallel BnB engine
// through the facade on generated scenarios: WithWorkers(n) must not
// change the result, and BnB must match the exhaustive optimum.
func TestSearchWorkersDeterministic(t *testing.T) {
	seeds := int64(24)
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(0); seed < seeds; seed++ {
		sc := progen.Config{MaxSpace: 3000}.Generate(seed)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			an, err := mhla.Analyze(sc.Program)
			if err != nil {
				t.Fatal(err)
			}
			run := func(engine mhla.Engine, workers int) *mhla.SearchResult {
				res, err := mhla.Search(context.Background(), an, sc.Platform,
					mhla.WithEngine(engine), mhla.WithWorkers(workers),
					mhla.WithObjective(sc.Options.Objective), mhla.WithPolicy(sc.Options.Policy))
				if err != nil {
					t.Fatalf("engine %v workers %d: %v", engine, workers, err)
				}
				return res
			}
			ref := run(mhla.BnB, 1)
			for _, w := range []int{2, 8} {
				got := run(mhla.BnB, w)
				if !reflect.DeepEqual(got.Cost, ref.Cost) || got.States != ref.States || got.Complete != ref.Complete {
					t.Errorf("workers=%d: %+v (states %d) != workers=1: %+v (states %d)",
						w, got.Cost, got.States, ref.Cost, ref.States)
				}
			}
			ex := run(mhla.Exhaustive, 0)
			if !reflect.DeepEqual(ex.Cost, ref.Cost) {
				t.Errorf("bnb cost %+v != exhaustive %+v", ref.Cost, ex.Cost)
			}
		})
	}
}

// TestRunOnGeneratedScenarios pushes generated programs and platforms
// through the complete facade flow (greedy engine, TE when the
// platform has DMA) and checks the basic operating-point relations.
func TestRunOnGeneratedScenarios(t *testing.T) {
	for seed := int64(100); seed < 116; seed++ {
		sc := progen.Generate(seed)
		res, err := mhla.Run(context.Background(), sc.Program,
			mhla.WithPlatform(sc.Platform), mhla.WithPolicy(sc.Options.Policy))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.MHLA.Energy > res.Original.Energy+1e-9 {
			t.Errorf("seed %d: MHLA energy %v above original %v", seed, res.MHLA.Energy, res.Original.Energy)
		}
		if res.TE.Energy != res.MHLA.Energy {
			t.Errorf("seed %d: TE changed energy %v -> %v", seed, res.MHLA.Energy, res.TE.Energy)
		}
		if res.Ideal.Cycles > res.MHLA.Cycles {
			t.Errorf("seed %d: ideal %d above MHLA %d cycles", seed, res.Ideal.Cycles, res.MHLA.Cycles)
		}
	}
}

// TestFacadeInputValidation: invalid facade inputs must surface as a
// typed *OptionError naming the offending field, not as silent
// fallbacks or untyped strings.
func TestFacadeInputValidation(t *testing.T) {
	prog := progen.Generate(1).Program
	cases := []struct {
		name  string
		opt   mhla.Option
		field string
	}{
		{"negative workers", mhla.WithWorkers(-2), "Workers"},
		{"negative max states", mhla.WithMaxStates(-1), "MaxStates"},
		{"zero L1", mhla.WithL1(0), "L1"},
		{"negative L1", mhla.WithL1(-4096), "L1"},
		{"nil platform", mhla.WithPlatform(nil), "Platform"},
		{"zero layers", mhla.WithPlatform(&mhla.Platform{Name: "empty"}), "Platform"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := mhla.Run(context.Background(), prog, c.opt)
			var oe *mhla.OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("error %v is not a *mhla.OptionError", err)
			}
			if oe.Field != c.field {
				t.Errorf("rejected field %q, want %q", oe.Field, c.field)
			}
			if _, err := mhla.Search(context.Background(), nil, nil, c.opt); !errors.As(err, &oe) {
				t.Errorf("Search did not reject: %v", err)
			}
			if _, err := mhla.SweepL1(context.Background(), prog, nil, c.opt); !errors.As(err, &oe) {
				t.Errorf("SweepL1 did not reject: %v", err)
			}
		})
	}
}
