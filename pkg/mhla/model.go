package mhla

import (
	"mhla/internal/model"
	"mhla/internal/modelio"
	"mhla/internal/transform"
)

// NewProgram creates an empty application model. Arrays and blocks
// are added through the Program methods (NewInput, NewOutput,
// NewArray, AddBlock).
func NewProgram(name string) *Program { return model.NewProgram(name) }

// For builds a loop of the given trip count around a body.
func For(v string, trip int, body ...Node) Node { return model.For(v, trip, body...) }

// Load builds a read access to an array at an affine index.
func Load(a *Array, index ...Expr) Node { return model.Load(a, index...) }

// Store builds a write access to an array at an affine index.
func Store(a *Array, index ...Expr) Node { return model.Store(a, index...) }

// Work builds a pure-compute statement of the given cycle cost.
func Work(cycles int64) Node { return model.Work(cycles) }

// Idx is the index expression for a plain loop iterator.
func Idx(v string) Expr { return model.Idx(v) }

// IdxC is the index expression coef*v.
func IdxC(coef int, v string) Expr { return model.IdxC(coef, v) }

// ConstExpr is a constant index expression.
func ConstExpr(c int) Expr { return model.ConstExpr(c) }

// EncodeProgram serializes a program to the JSON interchange format.
func EncodeProgram(p *Program) ([]byte, error) { return modelio.EncodeProgram(p) }

// DecodeProgram parses a program from the JSON interchange format.
func DecodeProgram(data []byte) (*Program, error) { return modelio.DecodeProgram(data) }

// EncodePlatform serializes a platform to the JSON interchange format.
func EncodePlatform(p *Platform) ([]byte, error) { return modelio.EncodePlatform(p) }

// DecodePlatform parses a platform from the JSON interchange format.
func DecodePlatform(data []byte) (*Platform, error) { return modelio.DecodePlatform(data) }

// Tile strip-mines the named loop of a block by the given factor
// (loop blocking), a DTSE pre-step that creates reuse for MHLA.
func Tile(p *Program, block, loopVar string, factor int) (*Program, error) {
	return transform.Tile(p, block, loopVar, factor)
}

// Interchange hoists the named loop of a block outward by one level.
func Interchange(p *Program, block, loopVar string) (*Program, error) {
	return transform.Interchange(p, block, loopVar)
}

// Distribute splits the named loop of a block into one loop per body
// statement (loop fission).
func Distribute(p *Program, block, loopVar string) (*Program, error) {
	return transform.Distribute(p, block, loopVar)
}
