// Package mhla is the public facade of the MHLA reproduction: the
// complete layer-assignment + time-extension tool flow of
//
//	M. Dasygenis, E. Brockmeyer, B. Durinck, F. Catthoor, D. Soudris,
//	A. Thanailakis. "A Memory Hierarchical Layer Assigning and
//	Prefetching Technique to Overcome the Memory Performance/Energy
//	Bottleneck." DATE 2005.
//
// behind one import. The entry point is Run with functional options:
//
//	res, err := mhla.Run(ctx, prog,
//		mhla.WithPlatform(mhla.TwoLevel(4096)),
//		mhla.WithObjective(mhla.Energy),
//		mhla.WithEngine(mhla.BnB),
//	)
//
// Run honors ctx: cancellation or a deadline aborts even a long
// branch-and-bound search promptly, and WithProgress streams search
// snapshots while the flow runs. When one program is evaluated
// against many platforms, Compile builds its platform-independent
// analysis once and WithWorkspace reuses it per call (SweepL1 and
// the Explorer do this automatically). For batch work — many
// applications, L1 sizes and objectives at once — Explorer fans a
// job list out over a worker pool with deterministic result ordering;
// Grid expands an app x size x objective cross product into such a
// job list. The
// rest of the package re-exports the stable model-building, platform,
// analysis, scheduling, simulation and reporting APIs; DESIGN.md maps
// them to the internal packages.
package mhla

import (
	"context"
	"fmt"
	"strings"
	"time"

	"mhla/internal/assign"
	"mhla/internal/core"
	"mhla/internal/energy"
	"mhla/internal/platform"
	"mhla/internal/workspace"
)

// DefaultL1 is the on-chip scratchpad capacity (bytes) Run assumes
// when no platform option is given: a 4 KiB L1 over SDRAM, the
// mid-range point of the paper's exploration.
const DefaultL1 = 4096

// config accumulates the functional options into the internal flow
// configuration.
type config struct {
	platform  *platform.Platform
	search    assign.Options
	disableTE bool
	progress  core.ProgressFunc
	// workspace, when non-nil, is the precompiled program analysis
	// Run/SweepL1 reuse instead of compiling their own.
	workspace *Workspace
	// sweepWorkers bounds SweepL1's concurrent sweep points (0 =
	// GOMAXPROCS).
	sweepWorkers int
	// err records the first invalid facade input; entry points return
	// it (a typed *OptionError) instead of running on a silently
	// patched configuration.
	err error
}

// fail records the first invalid input.
func (c *config) fail(field, reason string) {
	if c.err == nil {
		c.err = &assign.OptionError{Field: field, Reason: reason}
	}
}

func newConfig(opts []Option) *config {
	cfg := &config{search: assign.DefaultOptions()}
	for _, o := range opts {
		o(cfg)
	}
	if cfg.platform == nil {
		cfg.platform = energy.TwoLevel(DefaultL1)
	}
	if cfg.err == nil {
		if err := cfg.search.Validate(); err != nil {
			cfg.err = err
		}
	}
	return cfg
}

func (c *config) coreConfig() core.Config {
	return core.Config{
		Platform:  c.platform,
		Search:    c.search,
		DisableTE: c.disableTE,
		Progress:  c.progress,
	}
}

// Option configures a Run, Sweep, Search or Explorer job.
type Option func(*config)

// WithPlatform targets the given architecture. The default is
// TwoLevel(DefaultL1). A nil platform or one without at least two
// memory layers is rejected with a typed *OptionError.
func WithPlatform(p *Platform) Option {
	return func(c *config) {
		if p == nil {
			c.fail("Platform", "nil platform")
			return
		}
		if len(p.Layers) < 2 {
			c.fail("Platform", fmt.Sprintf("need at least 2 memory layers, have %d", len(p.Layers)))
			return
		}
		c.platform = p
	}
}

// WithL1 targets the standard two-level experiment platform (L1
// scratchpad of the given byte capacity over SDRAM, with DMA). A
// non-positive capacity is rejected with a typed *OptionError.
func WithL1(bytes int64) Option {
	return func(c *config) {
		if bytes <= 0 {
			c.fail("L1", fmt.Sprintf("capacity %d bytes, must be positive", bytes))
			return
		}
		c.platform = energy.TwoLevel(bytes)
	}
}

// WithObjective selects the quantity the assignment search minimizes:
// Energy (default), Time or EDP.
func WithObjective(o Objective) Option {
	return func(c *config) { c.search.Objective = o }
}

// WithEngine selects the search algorithm by registry name: Greedy
// (default), BnB, Exhaustive, Stochastic or Portfolio — see Engines
// for the live list and each engine's capabilities. Unknown names are
// rejected with a typed *OptionError.
func WithEngine(e Engine) Option {
	return func(c *config) { c.search.Engine = e }
}

// WithSeed seeds the stochastic engine's random source (the portfolio
// engine hands it to its stochastic member). Any value is valid, 0
// included; for a fixed seed the stochastic engine is
// byte-reproducible (absent a deadline). Engines without the seed
// capability ignore it.
func WithSeed(seed int64) Option {
	return func(c *config) { c.search.Seed = seed }
}

// WithDeadline bounds the wall-clock time of the anytime engines
// (Stochastic, Portfolio): they stop at the deadline and return the
// best incumbent found so far, flagged incomplete. 0 (the default)
// means no deadline; the greedy and exact engines ignore the setting
// (bound them with a context deadline, which aborts instead of
// truncating). Negative durations are rejected with a typed
// *OptionError.
func WithDeadline(d time.Duration) Option {
	return func(c *config) {
		if d < 0 {
			c.fail("Deadline", fmt.Sprintf("negative deadline %v", d))
			return
		}
		c.search.Deadline = d
	}
}

// WithPolicy selects the copy transfer policy: Slide (default,
// exploits inter-iteration reuse) or Refetch (the ablation baseline).
func WithPolicy(p Policy) Option {
	return func(c *config) { c.search.Policy = p }
}

// WithoutTE skips the time-extension step; the MHLA+TE operating
// point then equals MHLA.
func WithoutTE() Option {
	return func(c *config) { c.disableTE = true }
}

// WithoutInPlace disables lifetime-aware (in-place) capacity
// estimation, the A1 ablation.
func WithoutInPlace() Option {
	return func(c *config) { c.search.InPlace = false }
}

// WithAbsoluteGain makes the greedy engine rank moves by absolute
// gain instead of gain per on-chip byte, the A2-style ablation of the
// MHLA tool's ranking.
func WithAbsoluteGain() Option {
	return func(c *config) { c.search.GainPerByte = false }
}

// WithMaxStates caps the states the exact engines explore before
// giving up on optimality (default 500000). The cap applies per
// subtree task of the parallel search; results whose total exceeds it
// are flagged incomplete. Negative values are rejected with a typed
// *OptionError.
func WithMaxStates(n int) Option {
	return func(c *config) { c.search.MaxStates = n }
}

// WithWorkers caps the goroutines the exact engines (BnB, Exhaustive)
// fan their independent subtree searches over. 0 (the default) means
// GOMAXPROCS, 1 forces a single-threaded search, and the result is
// byte-identical at every worker count. The greedy engine is
// inherently sequential and ignores the setting. Negative values are
// rejected with a typed *OptionError.
func WithWorkers(n int) Option {
	return func(c *config) { c.search.Workers = n }
}

// WithWorkspace reuses a precompiled workspace (see Compile) instead
// of validating and analyzing the program per call. The workspace
// must have been compiled for the same *Program value the entry point
// receives; a mismatch is rejected with a typed *OptionError. Use it
// when one program is evaluated against many platforms — an L1 sweep,
// a batch grid, a serving loop — so the program-side analysis runs
// once instead of per point. A nil workspace is rejected with a typed
// *OptionError.
func WithWorkspace(ws *Workspace) Option {
	return func(c *config) {
		if ws == nil {
			c.fail("Workspace", "nil workspace")
			return
		}
		c.workspace = ws
	}
}

// WithIncumbent warm-starts the branch-and-bound engine with a
// known-good assignment — typically a neighboring configuration's
// optimum (SweepL1 chains its points this way automatically). The
// incumbent must have been built over the same compiled workspace the
// call searches (pass WithWorkspace with the workspace it came from);
// a mismatch is rejected with a typed *OptionError. It may have been
// found under a different platform — it is re-validated and re-scored
// under the call's platform and silently ignored when it no longer
// maps, fits, or improves on the greedy seed. A complete warm-started
// search returns byte-identical results; only the explored state
// count shrinks. The greedy and exhaustive engines ignore the
// setting. A nil assignment is rejected with a typed *OptionError.
func WithIncumbent(a *Assignment) Option {
	return func(c *config) {
		if a == nil {
			c.fail("Incumbent", "nil assignment")
			return
		}
		c.search.Incumbent = a
	}
}

// WithSweepWorkers bounds the sweep points SweepL1 evaluates
// concurrently. 0 (the default) means GOMAXPROCS, 1 forces a
// sequential sweep; the sweep result is identical at every worker
// count. Other entry points ignore the setting (WithWorkers bounds
// the search engines instead). Negative values are rejected with a
// typed *OptionError.
func WithSweepWorkers(n int) Option {
	return func(c *config) {
		if n < 0 {
			c.fail("SweepWorkers", fmt.Sprintf("negative worker count %d", n))
			return
		}
		c.sweepWorkers = n
	}
}

// WithProgress streams flow progress: one callback as each phase
// starts, plus the search engine's periodic snapshots. The callback
// must be fast. Phase entries and greedy snapshots arrive on the
// flow's goroutine; the parallel exact engines (BnB, Exhaustive)
// deliver their snapshots from worker goroutines, serialized, so the
// callback never runs concurrently with itself but must not assume
// the caller's goroutine.
func WithProgress(fn ProgressFunc) Option {
	return func(c *config) { c.progress = fn }
}

// TeeProgress fans flow progress snapshots out to several observers:
// the returned callback forwards each snapshot to every non-nil fn,
// in argument order and on the caller's goroutine, so the combined
// callback keeps the same delivery guarantees each fn would have had
// alone. nil fns are skipped; with zero (or only nil) fns the result
// is nil, so it composes with code that gates on a nil ProgressFunc.
// The serving layer uses this to chain its server-wide observer with
// a per-job progress publisher.
func TeeProgress(fns ...ProgressFunc) ProgressFunc {
	var live []ProgressFunc
	for _, fn := range fns {
		if fn != nil {
			live = append(live, fn)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(p Progress) {
		for _, fn := range live {
			fn(p)
		}
	}
}

// Compile builds the compile-once workspace of a program: validation,
// the data-reuse analysis and the program-side lifetime/dependence
// tables every flow step reads. The workspace is immutable and safe
// to share across goroutines; pass it back via WithWorkspace so
// repeated Run/SweepL1 calls on the same program skip the per-call
// analysis. The batch Explorer compiles one per distinct program
// automatically.
func Compile(p *Program) (*Workspace, error) { return workspace.Compile(p) }

// checkWorkspace verifies a configured workspace matches the program
// the entry point received (a nil program is allowed — the workspace
// carries its own).
func (c *config) checkWorkspace(p *Program) error {
	if c.workspace != nil && p != nil && p != c.workspace.Program {
		return &assign.OptionError{Field: "Workspace", Reason: "workspace was compiled for a different program"}
	}
	return nil
}

// Run executes the full two-step MHLA+TE flow on a program and
// evaluates the four operating points of the paper's figures. It
// returns ctx.Err() promptly when ctx is cancelled, even inside a
// long assignment search. With WithWorkspace the program-side
// analysis is reused instead of recompiled.
func Run(ctx context.Context, p *Program, opts ...Option) (*Result, error) {
	cfg := newConfig(opts)
	if cfg.err != nil {
		return nil, cfg.err
	}
	if err := cfg.checkWorkspace(p); err != nil {
		return nil, err
	}
	if cfg.workspace != nil {
		return core.RunWorkspace(ctx, cfg.workspace, cfg.coreConfig())
	}
	return core.RunContext(ctx, p, cfg.coreConfig())
}

// Search runs the assignment step alone on an analyzed program (step
// 1, no time extensions). A nil plat falls back to the platform
// options (WithPlatform/WithL1, default TwoLevel(DefaultL1));
// WithProgress streams the engine's snapshots.
func Search(ctx context.Context, an *Analysis, plat *Platform, opts ...Option) (*SearchResult, error) {
	cfg := newConfig(opts)
	if cfg.err != nil {
		return nil, cfg.err
	}
	if plat == nil {
		plat = cfg.platform
	}
	return assign.SearchContext(ctx, an, plat, cfg.assignOptions())
}

// ParseObjective parses an objective name: "energy", "time" or "edp".
func ParseObjective(s string) (Objective, error) {
	switch s {
	case "energy":
		return Energy, nil
	case "time":
		return Time, nil
	case "edp":
		return EDP, nil
	}
	return 0, fmt.Errorf("mhla: unknown objective %q (want energy, time or edp)", s)
}

// ParseEngine parses an engine name against the engine registry
// (e.g. "greedy", "bnb", "exhaustive", "lns", "portfolio"; see
// Engines for the live list). The empty string is rejected — callers
// with an optional engine knob should skip WithEngine instead.
func ParseEngine(s string) (Engine, error) {
	if s != "" {
		if info, _, err := assign.LookupEngine(Engine(s)); err == nil {
			return info.Name, nil
		}
	}
	names := make([]string, 0, 8)
	for _, info := range Engines() {
		names = append(names, string(info.Name))
	}
	return "", &OptionError{
		Field:  "Engine",
		Reason: fmt.Sprintf("unknown engine %q (want one of %s)", s, strings.Join(names, ", ")),
	}
}

// Engines lists the registered search engines sorted by name, with
// their capability flags (exact/anytime/deterministic, whether they
// honor Workers and Seed).
func Engines() []EngineInfo { return assign.Engines() }

// ParsePolicy parses a transfer policy name: "slide" or "refetch".
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "slide":
		return Slide, nil
	case "refetch":
		return Refetch, nil
	}
	return 0, fmt.Errorf("mhla: unknown policy %q (want slide or refetch)", s)
}

// assignOptions exposes the accumulated assignment options for the
// helpers (Search, Partition) that drive the assignment layer
// directly, wiring the flow-level progress callback into the engine
// the way core.RunContext does.
func (c *config) assignOptions() assign.Options {
	return core.WireSearchProgress(c.search, c.progress)
}
