package mhla

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Job is one unit of batch work: a program plus the options of its
// flow run.
type Job struct {
	// Label identifies the job in results and reports.
	Label string
	// Program is the application model to run.
	Program *Program
	// Options configure the job's run; they apply after the
	// Explorer-wide options.
	Options []Option
}

// JobResult is the outcome of one batch job. Exactly one of Result
// and Err is set.
type JobResult struct {
	// Label is the job's label, copied through for reporting.
	Label string
	// Result is the flow outcome on success.
	Result *Result
	// Err captures the job's own failure; a cancelled batch marks
	// unfinished jobs with the context error.
	Err error
}

// Explorer fans batch jobs out over a worker pool. The zero value is
// ready to use: it runs GOMAXPROCS workers with no shared options.
type Explorer struct {
	// Workers caps concurrent flow runs; <= 0 means GOMAXPROCS.
	Workers int
	// Options apply to every job, before the job's own options.
	Options []Option
	// Progress, when non-nil, is called after each job finishes with
	// the completed and total job counts. It runs on worker
	// goroutines and must be safe for concurrent use.
	Progress func(done, total int)
}

// Explore runs the jobs and returns one result per job, in job order
// regardless of worker scheduling. Per-job failures are captured in
// the corresponding JobResult and do not stop the batch. When ctx is
// cancelled Explore returns promptly with ctx.Err(); jobs not
// finished by then carry the context error.
//
// Explore memoizes workspaces by program identity: the first job of
// each distinct *Program compiles it (on its worker goroutine —
// distinct programs compile concurrently) and every later job of the
// same program reuses the result, so a Grid of one program across
// many sizes and objectives analyzes the program a single time. Jobs
// that already carry an explicit WithWorkspace option (Explorer-wide
// or per job) use theirs and skip the memoization entirely.
func (e *Explorer) Explore(ctx context.Context, jobs []Job) ([]JobResult, error) {
	results := make([]JobResult, len(jobs))
	for i, job := range jobs {
		results[i] = JobResult{Label: job.Label}
	}
	if len(jobs) == 0 {
		return results, ctx.Err()
	}

	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	cache := newWorkspaceCache()
	next := make(chan int)
	var wg sync.WaitGroup
	var done atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				job := jobs[i]
				opts := make([]Option, 0, len(e.Options)+len(job.Options)+1)
				opts = append(opts, e.Options...)
				opts = append(opts, job.Options...)
				// Memoize only when the job does not carry its own
				// workspace; a failed compile falls through to Run,
				// which surfaces the usual per-job validation error.
				if probe := newConfig(opts); probe.workspace == nil && probe.err == nil {
					if ws := cache.get(job.Program); ws != nil {
						opts = append([]Option{WithWorkspace(ws)}, opts...)
					}
				}
				res, err := Run(ctx, job.Program, opts...)
				results[i] = JobResult{Label: job.Label, Result: res, Err: err}
				if e.Progress != nil {
					e.Progress(int(done.Add(1)), len(jobs))
				}
			}
		}()
	}
feed:
	for i := range jobs {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	// Jobs never dispatched (the feed loop stopped on cancellation)
	// have neither a result nor an error yet; mark them so every
	// JobResult upholds the one-of-Result-and-Err contract.
	if err := ctx.Err(); err != nil {
		for i := range results {
			if results[i].Result == nil && results[i].Err == nil {
				results[i].Err = err
			}
		}
	}
	return results, ctx.Err()
}

// workspaceCache memoizes compiled workspaces by program identity for
// one batch. Each program compiles at most once — the first caller
// compiles (concurrent callers of the same program wait on its once;
// distinct programs compile in parallel on their worker goroutines) —
// and a failed compile is cached as nil so later jobs fall through to
// Run's own per-job validation error.
type workspaceCache struct {
	mu      sync.Mutex
	entries map[*Program]*workspaceEntry
}

type workspaceEntry struct {
	once sync.Once
	ws   *Workspace
}

func newWorkspaceCache() *workspaceCache {
	return &workspaceCache{entries: make(map[*Program]*workspaceEntry)}
}

func (c *workspaceCache) get(p *Program) *Workspace {
	if p == nil {
		return nil
	}
	c.mu.Lock()
	e := c.entries[p]
	if e == nil {
		e = &workspaceEntry{}
		c.entries[p] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		if ws, err := Compile(p); err == nil {
			e.ws = ws
		}
	})
	return e.ws
}

// GridApp names one program of a batch grid.
type GridApp struct {
	// Name labels the application in job labels and reports.
	Name string
	// Program is the application model.
	Program *Program
}

// Grid is an application x L1-size x objective cross product, the
// batch shape of a design-space exploration.
type Grid struct {
	// Apps are the applications to explore.
	Apps []GridApp
	// L1Sizes are the on-chip capacities to evaluate; empty means
	// DefaultSweepSizes().
	L1Sizes []int64
	// Objectives are the search objectives to evaluate; empty means
	// {Energy}.
	Objectives []Objective
	// Options apply to every expanded job (engine, policy, ...).
	Options []Option
}

// Jobs expands the grid into its deterministic job list: apps sorted
// by name, then sizes ascending, then objectives in the given order.
// Labels have the form "app/l1=4096/energy".
func (g Grid) Jobs() []Job {
	apps := append([]GridApp(nil), g.Apps...)
	sort.SliceStable(apps, func(i, j int) bool { return apps[i].Name < apps[j].Name })
	sizes := append([]int64(nil), g.L1Sizes...)
	if len(sizes) == 0 {
		sizes = DefaultSweepSizes()
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	objectives := g.Objectives
	if len(objectives) == 0 {
		objectives = []Objective{Energy}
	}

	var jobs []Job
	for _, app := range apps {
		for _, l1 := range sizes {
			for _, obj := range objectives {
				opts := make([]Option, 0, len(g.Options)+2)
				opts = append(opts, g.Options...)
				opts = append(opts, WithL1(l1), WithObjective(obj))
				jobs = append(jobs, Job{
					Label:   fmt.Sprintf("%s/l1=%d/%s", app.Name, l1, obj),
					Program: app.Program,
					Options: opts,
				})
			}
		}
	}
	return jobs
}

// BatchCSV renders batch results as comma-separated values with a
// header, one row per job in result order. Failed jobs carry their
// error in the last column with empty data columns.
func BatchCSV(results []JobResult) string {
	var b strings.Builder
	b.WriteString("job,orig_cycles,mhla_cycles,te_cycles,ideal_cycles,orig_pj,mhla_pj,error\n")
	for _, r := range results {
		if r.Err != nil {
			// RFC 4180 quoting: wrap in quotes, double inner quotes.
			fmt.Fprintf(&b, "%s,,,,,,,\"%s\"\n", r.Label,
				strings.ReplaceAll(r.Err.Error(), `"`, `""`))
			continue
		}
		res := r.Result
		fmt.Fprintf(&b, "%s,%d,%d,%d,%d,%.0f,%.0f,\n",
			r.Label, res.Original.Cycles, res.MHLA.Cycles, res.TE.Cycles, res.Ideal.Cycles,
			res.Original.Energy, res.MHLA.Energy)
	}
	return b.String()
}

// BatchReport renders batch results as an aligned table, one row per
// job in result order (deterministic for a deterministic job list).
// Failed jobs render their error in place of the operating points.
func BatchReport(results []JobResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-32s %14s %16s %9s %9s\n", "job", "te_cycles", "mhla_pj", "cyc_pct", "pj_pct")
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(&b, "%-32s error: %v\n", r.Label, r.Err)
			continue
		}
		g := r.Result.Gains()
		fmt.Fprintf(&b, "%-32s %14d %16.0f %8.1f%% %8.1f%%\n",
			r.Label, r.Result.TE.Cycles, r.Result.MHLA.Energy,
			100*g.TECycles, 100*g.MHLAEnergy)
	}
	return b.String()
}
