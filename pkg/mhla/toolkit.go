package mhla

import (
	"context"
	"fmt"

	"mhla/internal/dmasim"
	"mhla/internal/explore"
	"mhla/internal/layout"
	"mhla/internal/multitask"
	"mhla/internal/pareto"
	"mhla/internal/report"
	"mhla/internal/reuse"
	"mhla/internal/sim"
	"mhla/internal/te"
)

// Analyze runs the data-reuse analysis alone, deriving the
// copy-candidate chains the assignment search decides over.
func Analyze(p *Program) (*Analysis, error) { return reuse.Analyze(p) }

// Extend runs the time-extension step alone on an assignment: the
// per-block-transfer prefetch scheduling of the paper's Figure 1.
func Extend(a *Assignment) (*Plan, error) { return te.Extend(a) }

// ExtendWithWrites is Extend with the write-back overlap extension
// enabled (the A4 ablation beyond the paper's Figure 1).
func ExtendWithWrites(a *Assignment) (*Plan, error) {
	return te.ExtendWithOptions(a, te.Options{ExtendWrites: true})
}

// TraceResult is the outcome of the element-level trace simulation.
type TraceResult = sim.Result

// SimulateTrace validates an assignment with the element-level trace
// simulator, meant for down-scaled programs; maxAccesses bounds the
// trace (0 = simulator default).
func SimulateTrace(a *Assignment, maxAccesses int64) (*TraceResult, error) {
	return sim.Trace(a, sim.Options{MaxAccesses: maxAccesses})
}

// DMATimeline is the outcome of the event-driven DMA simulation.
type DMATimeline = dmasim.Result

// SimulateDMA replays a prefetch plan on the event-driven DMA
// timeline simulator, cross-checking the analytical stall model.
func SimulateDMA(plan *Plan) (*DMATimeline, error) { return dmasim.Simulate(plan) }

// Layout computes the concrete address layout of every memory layer
// of an assignment (the in-place address mapper).
func Layout(a *Assignment) ([]*LayerMap, error) { return layout.Map(a) }

// SweepL1 sweeps on-chip sizes for one program on the two-level
// experiment platform, running the full flow at every point. A nil
// or empty sizes slice means the standard 256 B .. 64 KiB sweep.
// Engine, objective, policy, TE and progress options all apply;
// platform options are ignored (the sweep constructs one platform
// per size). The program is compiled once (or reused via
// WithWorkspace) and the points are evaluated concurrently —
// WithSweepWorkers bounds the pool — with results identical to a
// sequential sweep at every worker count. SweepL1 returns ctx.Err()
// promptly when ctx is cancelled.
func SweepL1(ctx context.Context, p *Program, sizes []int64, opts ...Option) (*Sweep, error) {
	cfg := newConfig(opts)
	if cfg.err != nil {
		return nil, cfg.err
	}
	if err := cfg.checkWorkspace(p); err != nil {
		return nil, err
	}
	ws := cfg.workspace
	if ws == nil {
		var err error
		if ws, err = Compile(p); err != nil {
			return nil, fmt.Errorf("explore: %w", err)
		}
	}
	return explore.SweepWorkspace(ctx, ws, sizes, explore.Options{
		Config:  cfg.coreConfig(),
		Workers: cfg.sweepWorkers,
	})
}

// DefaultSweepSizes is the standard L1 sweep: 256 B to 64 KiB in
// half-power-of-two steps (the powers of two plus their midpoints,
// 17 points).
func DefaultSweepSizes() []int64 { return explore.DefaultSizes() }

// ParetoFrontier filters points down to the non-dominated set.
func ParetoFrontier(points []ParetoPoint) []ParetoPoint { return pareto.Frontier(points) }

// ParetoRender renders points as an aligned text table.
func ParetoRender(points []ParetoPoint) string { return pareto.Render(points) }

// Partition splits a shared scratchpad budget across tasks, running
// the flow per candidate split (the future-work multi-task mode).
// Search options (engine, objective, policy, progress) apply;
// platform options are ignored — the partitioner constructs the
// candidate platforms itself.
func Partition(tasks []Task, budget int64, opts ...Option) (*MultiTaskPlan, error) {
	cfg := newConfig(opts)
	if cfg.err != nil {
		return nil, cfg.err
	}
	return multitask.Partition(tasks, budget, cfg.assignOptions())
}

// Figure2 renders the paper's performance figure for a set of
// application results.
func Figure2(results []AppResult) string { return report.Figure2(results) }

// Figure3 renders the paper's energy figure.
func Figure3(results []AppResult) string { return report.Figure3(results) }

// ReportSummary renders the headline claims for a set of results.
func ReportSummary(results []AppResult) string { return report.Summary(results) }

// ReportCSV renders results as machine-readable CSV.
func ReportCSV(results []AppResult) string { return report.CSV(results) }
