package mhla_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"mhla/pkg/mhla"
)

func TestSimulateDefaults(t *testing.T) {
	p := reuseProgram()
	cfg := mhla.CacheConfigFor(mhla.TwoLevel(mhla.DefaultL1), 0, 0)
	res, err := mhla.Simulate(context.Background(), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Program != "reuse" || len(res.Levels) != 1 {
		t.Fatalf("unexpected result shape: program %q, %d levels", res.Program, len(res.Levels))
	}
	l1 := res.Levels[0]
	if l1.Accesses != res.Accesses || l1.Hits+l1.PrefetchHits+l1.Misses != l1.Accesses {
		t.Fatalf("conservation broken: %+v", l1)
	}
	// The scanned lookup table fits on chip: the repeated scans must
	// hit overwhelmingly.
	if l1.Hits <= l1.Misses {
		t.Fatalf("expected a hit-dominated scan, got hits %d misses %d", l1.Hits, l1.Misses)
	}
	out, err := mhla.SimulateJSON(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out, []byte(`"levels"`)) || !bytes.Contains(out, []byte(`"energy_pj"`)) {
		t.Fatalf("unexpected JSON: %s", out)
	}
}

// TestSimulateWorkspaceReuse: a precompiled workspace produces the
// same bytes as per-call compilation.
func TestSimulateWorkspaceReuse(t *testing.T) {
	p := reuseProgram()
	ws, err := mhla.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := mhla.CacheConfigFor(mhla.TwoLevel(mhla.DefaultL1), 2, 16)
	a, err := mhla.Simulate(context.Background(), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mhla.Simulate(context.Background(), p, cfg, mhla.WithWorkspace(ws))
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := mhla.SimulateJSON(a)
	bj, _ := mhla.SimulateJSON(b)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("workspace reuse changed the result:\n%s\nvs\n%s", aj, bj)
	}
}

func TestSimulateOptionErrors(t *testing.T) {
	p := reuseProgram()
	bad := mhla.CacheConfig{Levels: []mhla.CacheLevel{{Sets: 3, Ways: 1, LineBytes: 32}}}
	_, err := mhla.Simulate(context.Background(), p, bad)
	var oe *mhla.OptionError
	if !errors.As(err, &oe) || oe.Field != "CacheConfig" {
		t.Fatalf("err = %v, want *OptionError{Field: CacheConfig}", err)
	}
	// Workspace/program mismatch is the standard typed error.
	other, err := mhla.Compile(reuseProgram())
	if err != nil {
		t.Fatal(err)
	}
	_, err = mhla.Simulate(context.Background(), p, mhla.CacheConfig{}, mhla.WithWorkspace(other))
	if !errors.As(err, &oe) || oe.Field != "Workspace" {
		t.Fatalf("err = %v, want *OptionError{Field: Workspace}", err)
	}
}

func TestSimulateTraceLimit(t *testing.T) {
	p := reuseProgram()
	_, err := mhla.Simulate(context.Background(), p, mhla.CacheConfig{MaxAccesses: 5})
	if !errors.Is(err, mhla.ErrTraceLimit) {
		t.Fatalf("err = %v, want ErrTraceLimit", err)
	}
}

func TestSimulatePrefetcherParse(t *testing.T) {
	for _, s := range []string{"none", "nextline", "stride"} {
		if _, err := mhla.ParseCachePrefetcher(s); err != nil {
			t.Errorf("ParseCachePrefetcher(%q): %v", s, err)
		}
	}
	if _, err := mhla.ParseCachePrefetcher("markov"); err == nil {
		t.Error("unknown prefetcher parsed")
	}
}
