package mhla_test

// Facade tests of the compile-once workspace: Compile/WithWorkspace
// equivalence and validation, WithSweepWorkers, and the batch
// Explorer's one-workspace-per-distinct-program memoization.

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"mhla/pkg/mhla"
)

// TestRunWithWorkspaceMatchesPlainRun: a Run over a precompiled
// workspace must return exactly the plain Run result.
func TestRunWithWorkspaceMatchesPlainRun(t *testing.T) {
	p := reuseProgram()
	ws, err := mhla.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Program != p {
		t.Fatal("workspace not bound to the compiled program")
	}
	plain, err := mhla.Run(context.Background(), p, mhla.WithL1(512))
	if err != nil {
		t.Fatal(err)
	}
	shared, err := mhla.Run(context.Background(), p, mhla.WithL1(512), mhla.WithWorkspace(ws))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.MHLA, shared.MHLA) || !reflect.DeepEqual(plain.TE, shared.TE) ||
		!reflect.DeepEqual(plain.Original, shared.Original) || !reflect.DeepEqual(plain.Ideal, shared.Ideal) ||
		plain.SearchStates != shared.SearchStates {
		t.Errorf("workspace run differs from plain run:\n%+v\nvs\n%+v", plain.MHLA, shared.MHLA)
	}
	if shared.Analysis != ws.Analysis {
		t.Error("workspace run did not reuse the compiled analysis")
	}
}

// TestWithWorkspaceValidation: nil and mismatched workspaces are
// rejected with typed option errors.
func TestWithWorkspaceValidation(t *testing.T) {
	p := reuseProgram()
	ws, err := mhla.Compile(p)
	if err != nil {
		t.Fatal(err)
	}

	var oe *mhla.OptionError
	if _, err := mhla.Run(context.Background(), p, mhla.WithWorkspace(nil)); !errors.As(err, &oe) || oe.Field != "Workspace" {
		t.Errorf("nil workspace: got %v, want *OptionError{Field: Workspace}", err)
	}
	other := reuseProgram()
	if _, err := mhla.Run(context.Background(), other, mhla.WithWorkspace(ws)); !errors.As(err, &oe) || oe.Field != "Workspace" {
		t.Errorf("mismatched program: got %v, want *OptionError{Field: Workspace}", err)
	}
	if _, err := mhla.SweepL1(context.Background(), other, []int64{512}, mhla.WithWorkspace(ws)); !errors.As(err, &oe) || oe.Field != "Workspace" {
		t.Errorf("mismatched sweep program: got %v, want *OptionError{Field: Workspace}", err)
	}
	if _, err := mhla.SweepL1(context.Background(), p, []int64{512}, mhla.WithSweepWorkers(-1)); !errors.As(err, &oe) || oe.Field != "SweepWorkers" {
		t.Errorf("negative sweep workers: got %v, want *OptionError{Field: SweepWorkers}", err)
	}
}

// TestSweepL1WorkspaceWorkerEquivalence: the sweep result is
// identical with and without a preshared workspace, at every sweep
// worker count.
func TestSweepL1WorkspaceWorkerEquivalence(t *testing.T) {
	p := reuseProgram()
	sizes := []int64{256, 512, 1024, 4096}
	ref, err := mhla.SweepL1(context.Background(), p, sizes, mhla.WithSweepWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	ws, err := mhla.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 4} {
		sw, err := mhla.SweepL1(context.Background(), p, sizes,
			mhla.WithWorkspace(ws), mhla.WithSweepWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if sw.CSV() != ref.CSV() {
			t.Errorf("workers=%d: sweep differs from sequential fresh sweep:\n%s\nvs\n%s",
				workers, sw.CSV(), ref.CSV())
		}
	}
}

// TestWithIncumbentValidationAndEquivalence: the warm-start incumbent
// option rejects nil and foreign-workspace assignments with typed
// errors, and an accepted incumbent leaves the result byte-identical
// to a cold run while never growing the search effort.
func TestWithIncumbentValidationAndEquivalence(t *testing.T) {
	p := reuseProgram()
	ws, err := mhla.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := mhla.Run(context.Background(), p, mhla.WithL1(512),
		mhla.WithWorkspace(ws), mhla.WithEngine(mhla.BnB))
	if err != nil {
		t.Fatal(err)
	}

	var oe *mhla.OptionError
	if _, err := mhla.Run(context.Background(), p, mhla.WithIncumbent(nil)); !errors.As(err, &oe) || oe.Field != "Incumbent" {
		t.Errorf("nil incumbent: got %v, want *OptionError{Field: Incumbent}", err)
	}
	// Without WithWorkspace the run compiles its own workspace, so an
	// incumbent from ws is foreign to it and must be rejected.
	if _, err := mhla.Run(context.Background(), p, mhla.WithEngine(mhla.BnB),
		mhla.WithIncumbent(cold.Assignment)); !errors.As(err, &oe) || oe.Field != "Incumbent" {
		t.Errorf("foreign incumbent: got %v, want *OptionError{Field: Incumbent}", err)
	}

	// Same workspace, neighboring platform: byte-identical operating
	// points, search effort at most the cold run's.
	ref, err := mhla.Run(context.Background(), p, mhla.WithL1(1024),
		mhla.WithWorkspace(ws), mhla.WithEngine(mhla.BnB))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := mhla.Run(context.Background(), p, mhla.WithL1(1024),
		mhla.WithWorkspace(ws), mhla.WithEngine(mhla.BnB), mhla.WithIncumbent(cold.Assignment))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.MHLA, warm.MHLA) || !reflect.DeepEqual(ref.TE, warm.TE) ||
		!reflect.DeepEqual(ref.Original, warm.Original) || !reflect.DeepEqual(ref.Ideal, warm.Ideal) {
		t.Errorf("warm-started run differs from cold run:\n%+v\nvs\n%+v", ref.MHLA, warm.MHLA)
	}
	if warm.SearchStates > ref.SearchStates {
		t.Errorf("warm start explored more states (%d) than cold (%d)", warm.SearchStates, ref.SearchStates)
	}
}

// TestExplorerReusesWorkspacePerProgram: a batch over a grid must
// compile each distinct program once — observable as all jobs of one
// program sharing the same Analysis value, with distinct programs
// keeping distinct analyses.
func TestExplorerReusesWorkspacePerProgram(t *testing.T) {
	grid := testGrid(t) // 2 apps x 2 sizes x 2 objectives
	var ex mhla.Explorer
	results, err := ex.Explore(context.Background(), grid.Jobs())
	if err != nil {
		t.Fatal(err)
	}
	byProgram := make(map[*mhla.Program]*mhla.Analysis)
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Label, r.Err)
		}
		if an, ok := byProgram[r.Result.Program]; ok {
			if r.Result.Analysis != an {
				t.Errorf("%s: job re-analyzed its program instead of reusing the memoized workspace", r.Label)
			}
		} else {
			byProgram[r.Result.Program] = r.Result.Analysis
		}
	}
	if len(byProgram) != 2 {
		t.Fatalf("expected 2 distinct programs in the grid, saw %d", len(byProgram))
	}
	seen := make(map[*mhla.Analysis]bool)
	for _, an := range byProgram {
		if seen[an] {
			t.Error("distinct programs share one analysis")
		}
		seen[an] = true
	}
}

// TestExplorerMemoizedResultsMatchIndividualRuns: workspace
// memoization must not change any job's result.
func TestExplorerMemoizedResultsMatchIndividualRuns(t *testing.T) {
	grid := testGrid(t)
	jobs := grid.Jobs()
	var ex mhla.Explorer
	results, err := ex.Explore(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, job := range jobs {
		solo, err := mhla.Run(context.Background(), job.Program, job.Options...)
		if err != nil {
			t.Fatalf("%s: %v", job.Label, err)
		}
		got := results[i].Result
		if !reflect.DeepEqual(solo.MHLA, got.MHLA) || !reflect.DeepEqual(solo.TE, got.TE) ||
			solo.SearchStates != got.SearchStates {
			t.Errorf("%s: batch result differs from individual run", job.Label)
		}
	}
}
