package mhla_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"mhla/internal/apps"
	"mhla/pkg/mhla"
)

// reuseProgram is a small kernel with obvious data reuse: a lookup
// table scanned repeatedly.
func reuseProgram() *mhla.Program {
	p := mhla.NewProgram("reuse")
	tbl := p.NewInput("tbl", 2, 64)
	out := p.NewOutput("out", 2, 32)
	p.AddBlock("scan",
		mhla.For("rep", 32,
			mhla.For("i", 64,
				mhla.Load(tbl, mhla.Idx("i")),
				mhla.Work(2),
			),
			mhla.Store(out, mhla.Idx("rep")),
		),
	)
	return p
}

// hugeProgram builds a search space far beyond what the exhaustive
// engine can finish in test time: many independent arrays, each with
// a multi-level reuse chain, on a three-level hierarchy. The
// cancellation tests rely on the search never completing on its own.
func hugeProgram() *mhla.Program {
	p := mhla.NewProgram("huge")
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("t%02d", i)
		tbl := p.NewInput(name, 2, 64, 64)
		out := p.NewOutput("o"+name, 2, 64)
		p.AddBlock("b"+name,
			mhla.For("r", 64,
				mhla.For("i", 64,
					mhla.For("j", 64,
						mhla.Load(tbl, mhla.Idx("i"), mhla.Idx("j")),
						mhla.Work(1),
					),
				),
				mhla.Store(out, mhla.Idx("r")),
			),
		)
	}
	return p
}

func testApp(t *testing.T, name string) (*mhla.Program, int64) {
	t.Helper()
	app, err := apps.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return app.Build(apps.Test), app.L1
}

func TestRunDefaults(t *testing.T) {
	res, err := mhla.Run(context.Background(), reuseProgram())
	if err != nil {
		t.Fatal(err)
	}
	if res.Platform == nil || res.Platform.OnChipCapacity() != mhla.DefaultL1 {
		t.Fatalf("default platform not TwoLevel(%d): %v", mhla.DefaultL1, res.Platform)
	}
	if res.Assignment == nil || res.Plan == nil || res.Analysis == nil {
		t.Fatalf("incomplete result: %+v", res)
	}
	if res.MHLA.Energy > res.Original.Energy {
		t.Errorf("MHLA energy %v worse than original %v", res.MHLA.Energy, res.Original.Energy)
	}
	if res.TE.Cycles > res.MHLA.Cycles {
		t.Errorf("TE cycles %d worse than MHLA %d", res.TE.Cycles, res.MHLA.Cycles)
	}
	if res.Ideal.Cycles > res.TE.Cycles {
		t.Errorf("ideal cycles %d worse than TE %d", res.Ideal.Cycles, res.TE.Cycles)
	}
}

func TestWithoutTE(t *testing.T) {
	res, err := mhla.Run(context.Background(), reuseProgram(), mhla.WithL1(1024), mhla.WithoutTE())
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Applicable {
		t.Error("WithoutTE left the plan applicable")
	}
	if res.TE.Cycles != res.MHLA.Cycles || res.TE.Energy != res.MHLA.Energy {
		t.Errorf("WithoutTE: TE point %+v differs from MHLA %+v", res.TE, res.MHLA)
	}
}

func TestNoDMAPlatform(t *testing.T) {
	res, err := mhla.Run(context.Background(), reuseProgram(),
		mhla.WithPlatform(mhla.TwoLevelNoDMA(1024)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Applicable {
		t.Error("TE plan applicable without a DMA engine")
	}
	if res.TE.Cycles != res.MHLA.Cycles || res.TE.Energy != res.MHLA.Energy {
		t.Errorf("no-DMA: TE point %+v differs from MHLA %+v", res.TE, res.MHLA)
	}
}

// TestEngineSelection checks the engine option is honored: the exact
// engines agree with each other and are no worse than greedy.
func TestEngineSelection(t *testing.T) {
	prog, l1 := testApp(t, "durbin")
	ctx := context.Background()
	run := func(e mhla.Engine) *mhla.Result {
		res, err := mhla.Run(ctx, prog, mhla.WithL1(l1), mhla.WithEngine(e))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	greedy := run(mhla.Greedy)
	bnb := run(mhla.BnB)
	exhaustive := run(mhla.Exhaustive)
	if bnb.MHLA.Energy != exhaustive.MHLA.Energy {
		t.Errorf("BnB energy %v != exhaustive %v", bnb.MHLA.Energy, exhaustive.MHLA.Energy)
	}
	if bnb.MHLA.Energy > greedy.MHLA.Energy {
		t.Errorf("optimal BnB energy %v worse than greedy %v", bnb.MHLA.Energy, greedy.MHLA.Energy)
	}
	if bnb.SearchStates >= exhaustive.SearchStates {
		t.Errorf("pruning explored %d states, exhaustive %d", bnb.SearchStates, exhaustive.SearchStates)
	}
}

// TestObjectiveSelection checks the objective option is honored: with
// an exact engine, the time-optimal run cannot be slower than the
// energy-optimal one, and vice versa for energy.
func TestObjectiveSelection(t *testing.T) {
	prog, l1 := testApp(t, "sobel")
	ctx := context.Background()
	run := func(o mhla.Objective) *mhla.Result {
		res, err := mhla.Run(ctx, prog, mhla.WithL1(l1), mhla.WithEngine(mhla.BnB), mhla.WithObjective(o))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	byEnergy := run(mhla.Energy)
	byTime := run(mhla.Time)
	if byTime.MHLA.Cycles > byEnergy.MHLA.Cycles {
		t.Errorf("time-optimal %d cycles slower than energy-optimal %d",
			byTime.MHLA.Cycles, byEnergy.MHLA.Cycles)
	}
	if byEnergy.MHLA.Energy > byTime.MHLA.Energy {
		t.Errorf("energy-optimal %v pJ above time-optimal %v",
			byEnergy.MHLA.Energy, byTime.MHLA.Energy)
	}
}

// TestPolicySelection checks the refetch ablation can only lose
// energy against slide under an optimal engine.
func TestPolicySelection(t *testing.T) {
	prog, l1 := testApp(t, "sobel")
	ctx := context.Background()
	slide, err := mhla.Run(ctx, prog, mhla.WithL1(l1), mhla.WithEngine(mhla.BnB))
	if err != nil {
		t.Fatal(err)
	}
	refetch, err := mhla.Run(ctx, prog, mhla.WithL1(l1), mhla.WithEngine(mhla.BnB),
		mhla.WithPolicy(mhla.Refetch))
	if err != nil {
		t.Fatal(err)
	}
	if slide.MHLA.Energy > refetch.MHLA.Energy {
		t.Errorf("slide energy %v worse than refetch %v", slide.MHLA.Energy, refetch.MHLA.Energy)
	}
}

func TestWithProgress(t *testing.T) {
	var phases []mhla.Phase
	var searchSnapshots int
	_, err := mhla.Run(context.Background(), reuseProgram(), mhla.WithL1(1024),
		mhla.WithProgress(func(p mhla.Progress) {
			if p.Search == (mhla.SearchProgress{}) {
				phases = append(phases, p.Phase)
			} else {
				searchSnapshots++
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	want := []mhla.Phase{mhla.PhaseAnalyze, mhla.PhaseAssign, mhla.PhaseExtend, mhla.PhaseEvaluate}
	if len(phases) != len(want) {
		t.Fatalf("phases %v, want %v", phases, want)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("phases %v, want %v", phases, want)
		}
	}
	if searchSnapshots == 0 {
		t.Error("no search progress snapshots delivered")
	}
}

func TestRunPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mhla.Run(ctx, reuseProgram()); err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestRunCancelPromptly proves a long exact search aborts quickly on
// cancellation instead of running to completion: the huge program's
// exhaustive space takes far longer than the test allows.
func TestRunCancelPromptly(t *testing.T) {
	prog := hugeProgram()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := mhla.Run(ctx, prog,
		mhla.WithPlatform(mhla.ThreeLevel(4096, 32768)),
		mhla.WithEngine(mhla.Exhaustive), mhla.WithMaxStates(1<<40))
	elapsed := time.Since(start)
	if err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
}

// TestBnBCancelPromptly covers the pruning engine on the same space.
func TestBnBCancelPromptly(t *testing.T) {
	prog := hugeProgram()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := mhla.Run(ctx, prog,
		mhla.WithPlatform(mhla.ThreeLevel(4096, 32768)),
		mhla.WithEngine(mhla.BnB), mhla.WithMaxStates(1<<40))
	elapsed := time.Since(start)
	if err != context.DeadlineExceeded {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
}

// TestSweepCancelPromptly covers the sweep path: cancellation between
// or inside sweep points surfaces ctx.Err().
func TestSweepCancelPromptly(t *testing.T) {
	prog := hugeProgram()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := mhla.SweepL1(ctx, prog, nil, mhla.WithEngine(mhla.Exhaustive), mhla.WithMaxStates(1<<40))
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
	if err != context.DeadlineExceeded {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}

func TestSearchStandalone(t *testing.T) {
	prog, l1 := testApp(t, "durbin")
	an, err := mhla.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := mhla.Search(context.Background(), an, mhla.TwoLevel(l1), mhla.WithEngine(mhla.BnB))
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Complete {
		t.Error("BnB incomplete on a test-scale app")
	}
	if sr.Cost.Energy > sr.Baseline.Energy {
		t.Errorf("search energy %v worse than baseline %v", sr.Cost.Energy, sr.Baseline.Energy)
	}
}

// TestSearchNilPlatform checks the platform options back a nil plat
// argument instead of panicking inside validation.
func TestSearchNilPlatform(t *testing.T) {
	prog, l1 := testApp(t, "durbin")
	an, err := mhla.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	snapshots := 0
	sr, err := mhla.Search(context.Background(), an, nil,
		mhla.WithL1(l1),
		mhla.WithProgress(func(p mhla.Progress) { snapshots++ }))
	if err != nil {
		t.Fatal(err)
	}
	if sr.Cost.Energy > sr.Baseline.Energy {
		t.Errorf("search energy %v worse than baseline %v", sr.Cost.Energy, sr.Baseline.Energy)
	}
	if snapshots == 0 {
		t.Error("WithProgress delivered no snapshots through Search")
	}
}

// TestSweepOptions checks SweepL1 honors progress and TE options
// rather than silently dropping them.
func TestSweepOptions(t *testing.T) {
	prog, _ := testApp(t, "sobel")
	snapshots := 0
	sw, err := mhla.SweepL1(context.Background(), prog, []int64{512, 1024},
		mhla.WithoutTE(),
		mhla.WithProgress(func(p mhla.Progress) { snapshots++ }))
	if err != nil {
		t.Fatal(err)
	}
	if snapshots == 0 {
		t.Error("WithProgress delivered no snapshots through SweepL1")
	}
	for _, pt := range sw.Points {
		if pt.Result.Plan.Applicable {
			t.Errorf("size %d: WithoutTE left the plan applicable", pt.L1)
		}
	}
}

func TestParseHelpers(t *testing.T) {
	if o, err := mhla.ParseObjective("edp"); err != nil || o != mhla.EDP {
		t.Errorf("ParseObjective(edp) = %v, %v", o, err)
	}
	if e, err := mhla.ParseEngine("bnb"); err != nil || e != mhla.BnB {
		t.Errorf("ParseEngine(bnb) = %v, %v", e, err)
	}
	if p, err := mhla.ParsePolicy("refetch"); err != nil || p != mhla.Refetch {
		t.Errorf("ParsePolicy(refetch) = %v, %v", p, err)
	}
	if _, err := mhla.ParseObjective("bogus"); err == nil {
		t.Error("ParseObjective accepted bogus")
	}
	if _, err := mhla.ParseEngine("bogus"); err == nil {
		t.Error("ParseEngine accepted bogus")
	}
	if _, err := mhla.ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy accepted bogus")
	}
}

func TestTeeProgress(t *testing.T) {
	if mhla.TeeProgress() != nil {
		t.Error("TeeProgress() of nothing should be nil")
	}
	if mhla.TeeProgress(nil, nil) != nil {
		t.Error("TeeProgress of only nil fns should be nil")
	}
	var single []mhla.Phase
	one := func(p mhla.Progress) { single = append(single, p.Phase) }
	mhla.TeeProgress(nil, one, nil)(mhla.Progress{Phase: mhla.PhaseAssign})
	if len(single) != 1 || single[0] != mhla.PhaseAssign {
		t.Errorf("single-fn tee delivered %v", single)
	}
	// Fan-out preserves argument order per snapshot.
	var order []string
	tee := mhla.TeeProgress(
		func(p mhla.Progress) { order = append(order, "a:"+string(p.Phase)) },
		nil,
		func(p mhla.Progress) { order = append(order, "b:"+string(p.Phase)) },
	)
	tee(mhla.Progress{Phase: mhla.PhaseAnalyze})
	tee(mhla.Progress{Phase: mhla.PhaseExtend})
	want := []string{"a:analyze", "b:analyze", "a:extend", "b:extend"}
	if len(order) != len(want) {
		t.Fatalf("tee delivered %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("tee delivered %v, want %v", order, want)
		}
	}
}
